// Package ownership implements AEON's context ownership network (§ 3 of the
// paper): a directed acyclic graph of contexts in which an edge parent→child
// means the parent "directly owns" the child. The graph supports the
// dominator computation dom(G,C) = lub(share(G,C) ∪ {C}) that the runtime
// uses as the sequencing point for events, path finding for top-down lock
// activation, and dynamic mutation (context creation, ownership edge changes,
// context removal) with acyclicity enforcement.
//
// The paper models the network as a join semi-lattice; when a dominator query
// discovers multiple minimal common ancestors (the "multiple maxima which
// share common descendants" case of § 3), the graph transparently inserts an
// unnamed virtual context owning them, exactly as the paper's footnote
// prescribes.
//
// The graph is copy-on-write: the current state lives in an immutable
// Snapshot published through an atomic pointer, so every read API is
// lock-free, while mutations serialize on a writer-only mutex and build the
// next snapshot with path-copied structural sharing (a fresh leaf — the
// TPC-C hot mutation — copies O(parents) nodes, never the whole graph).
package ownership

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ID identifies a context in the ownership network. IDs are assigned by the
// graph and are never reused.
type ID uint64

// None is the zero ID; it never names a valid context.
const None ID = 0

// String renders the ID for logs and errors.
func (id ID) String() string { return fmt.Sprintf("ctx#%d", uint64(id)) }

// VirtualClass is the class name given to unnamed contexts the graph inserts
// to restore the join semi-lattice property.
const VirtualClass = "__virtual__"

// VirtualIDBase is the first ID of the reserved virtual band: named contexts
// allocate sequentially from 1, virtual joins allocate sequentially from
// VirtualIDBase. The split keeps the two allocators independent, which is
// what lets a replicated deployment assign named-context IDs by log-sequence
// order on every node while each process still mints virtual sequencing
// points lazily (in whatever order its own dominator queries arrive) without
// ever colliding with a replicated ID. 2^32 leaves both bands effectively
// unbounded while keeping virtual IDs shallow in the radix trie.
const VirtualIDBase ID = 1 << 32

// IsVirtual reports whether id lies in the reserved virtual-join band.
func (id ID) IsVirtual() bool { return id >= VirtualIDBase }

var (
	// ErrNotFound is returned when an ID does not name a context.
	ErrNotFound = errors.New("ownership: context not found")
	// ErrCycle is returned when a mutation would create an ownership cycle.
	ErrCycle = errors.New("ownership: mutation would create a cycle")
	// ErrExists is returned when an edge or context already exists.
	ErrExists = errors.New("ownership: already exists")
	// ErrHasEdges is returned when removing a context that still owns or is
	// owned by others.
	ErrHasEdges = errors.New("ownership: context still has ownership edges")
	// ErrNoPath is returned when no downward path connects two contexts.
	ErrNoPath = errors.New("ownership: no ownership path")
)

// node is an immutable record of one context. Mutations clone the nodes they
// touch; unchanged nodes are shared between snapshots.
type node struct {
	id       ID
	class    string
	parents  []ID
	children []ID
}

func (n *node) clone() *node {
	return &node{
		id:       n.id,
		class:    n.class,
		parents:  append([]ID(nil), n.parents...),
		children: append([]ID(nil), n.children...),
	}
}

// Graph is a mutable ownership network with lock-free reads: the current
// state is an immutable Snapshot behind an atomic pointer, and all read
// methods delegate to it. Mutations take the writer-only mutex, build the
// next snapshot by path copying, and publish it atomically.
//
// The zero value is not usable; construct with NewGraph.
type Graph struct {
	// mu serializes writers: structural mutations, dominator-cache fills
	// (which re-validate snapshot currency) and virtual-join minting. No
	// read path acquires it.
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]

	// nextID allocates named contexts (sequential from 1); nextVirtual
	// allocates virtual joins from the reserved high band. See VirtualIDBase
	// for why the spaces are disjoint.
	nextID      ID
	nextVirtual ID

	// virtualJoin memoizes virtual contexts created for a given set of
	// minimal upper bounds so repeated queries reuse the same context;
	// virtualKey is its reverse index, so removing a virtual context (or one
	// of its edges) invalidates the memo entry instead of leaving it to
	// resurrect a deleted or no-longer-covering context ID.
	virtualJoin map[string]ID
	virtualKey  map[ID]string
}

// NewGraph returns an empty ownership network.
func NewGraph() *Graph {
	g := &Graph{
		nextID:      1,
		nextVirtual: VirtualIDBase,
		virtualJoin: make(map[string]ID),
		virtualKey:  make(map[ID]string),
	}
	g.snap.Store(&Snapshot{g: g, nodes: &trie{}, dom: newDomCache()})
	return g
}

// Snapshot returns the current immutable view of the network. All reads on
// it are lock-free and mutually consistent; an event should resolve one
// snapshot and issue every query of its admission sequence against it.
func (g *Graph) Snapshot() *Snapshot { return g.snap.Load() }

// publishLocked installs the next snapshot. Caller holds g.mu.
func (g *Graph) publishLocked(nodes *trie, dom *domCache) *Snapshot {
	next := &Snapshot{g: g, nodes: nodes, version: g.snap.Load().version + 1, dom: dom}
	g.snap.Store(next)
	return next
}

// Version returns a counter incremented by every mutation. Server-side
// caches use it to detect staleness.
func (g *Graph) Version() uint64 { return g.Snapshot().version }

// Len reports the number of contexts in the network.
func (g *Graph) Len() int { return g.Snapshot().Len() }

// Class reports the class of a context.
func (g *Graph) Class(id ID) (string, error) { return g.Snapshot().Class(id) }

// Contains reports whether the context exists.
func (g *Graph) Contains(id ID) bool { return g.Snapshot().Contains(id) }

// Children returns a copy of the direct children of id.
func (g *Graph) Children(id ID) ([]ID, error) { return g.Snapshot().Children(id) }

// Parents returns a copy of the direct owners of id.
func (g *Graph) Parents(id ID) ([]ID, error) { return g.Snapshot().Parents(id) }

// OwnsDirectly reports whether parent directly owns child.
func (g *Graph) OwnsDirectly(parent, child ID) bool { return g.Snapshot().OwnsDirectly(parent, child) }

// Owns reports whether anc transitively owns desc (strictly).
func (g *Graph) Owns(anc, desc ID) bool { return g.Snapshot().Owns(anc, desc) }

// Desc returns the strict descendants of id (excluding id itself), sorted.
func (g *Graph) Desc(id ID) ([]ID, error) { return g.Snapshot().Desc(id) }

// Roots returns the contexts with no owners.
func (g *Graph) Roots() []ID { return g.Snapshot().Roots() }

// Path returns a downward direct-ownership path from anc to desc, inclusive
// on both ends.
func (g *Graph) Path(anc, desc ID) ([]ID, error) { return g.Snapshot().Path(anc, desc) }

// DumpDOT renders the graph in Graphviz DOT form (debugging aid).
func (g *Graph) DumpDOT() string { return g.Snapshot().DumpDOT() }

// AddContext creates a new context of the given class owned by the given
// parents and returns its ID. Creating a context with no parents makes it a
// root. A fresh context is necessarily a leaf, so this mutation can never
// introduce a cycle; the dominator cache is carried over to the next snapshot
// whenever the leaf-audit proves every cached entry still holds (see
// leafDomCacheStable), which is the steady state of leaf-creating workloads.
func (g *Graph) AddContext(class string, parents ...ID) (ID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap.Load()

	for _, p := range parents {
		if cur.nodes.get(p) == nil {
			return None, fmt.Errorf("parent %v: %w", p, ErrNotFound)
		}
	}
	id := g.nextID
	g.nextID++
	n := &node{id: id, class: class}
	nodes := cur.nodes
	seen := make(map[ID]bool, len(parents))
	for _, p := range parents {
		if seen[p] {
			continue
		}
		seen[p] = true
		n.parents = append(n.parents, p)
		pc := nodes.get(p).clone()
		pc.children = append(pc.children, id)
		nodes = nodes.set(p, pc)
	}
	nodes = nodes.set(id, n)

	next := &Snapshot{g: g, nodes: nodes, version: cur.version + 1}
	if leafDomCacheStable(next, cur.dom, id, n.parents) {
		next.dom = cur.dom
	} else {
		next.dom = newDomCache()
	}
	g.snap.Store(next)
	return id, nil
}

// AddEdge records that parent directly owns child. It fails with ErrCycle if
// the edge would make the network cyclic.
func (g *Graph) AddEdge(parent, child ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap.Load()

	pn := cur.nodes.get(parent)
	if pn == nil {
		return fmt.Errorf("parent %v: %w", parent, ErrNotFound)
	}
	cn := cur.nodes.get(child)
	if cn == nil {
		return fmt.Errorf("child %v: %w", child, ErrNotFound)
	}
	if containsID(pn.children, child) {
		return fmt.Errorf("edge %v→%v: %w", parent, child, ErrExists)
	}
	if parent == child || cur.reachable(child, parent) {
		return fmt.Errorf("edge %v→%v: %w", parent, child, ErrCycle)
	}
	pc := pn.clone()
	pc.children = append(pc.children, child)
	cc := cn.clone()
	cc.parents = append(cc.parents, parent)
	nodes := cur.nodes.set(parent, pc).set(child, cc)
	// Structural edge mutations can move dominators arbitrarily; the next
	// snapshot starts with a fresh cache.
	g.publishLocked(nodes, newDomCache())
	return nil
}

// RemoveEdge deletes a direct-ownership edge.
func (g *Graph) RemoveEdge(parent, child ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap.Load()

	pn := cur.nodes.get(parent)
	if pn == nil {
		return fmt.Errorf("parent %v: %w", parent, ErrNotFound)
	}
	cn := cur.nodes.get(child)
	if cn == nil {
		return fmt.Errorf("child %v: %w", child, ErrNotFound)
	}
	if !containsID(pn.children, child) {
		return fmt.Errorf("edge %v→%v: %w", parent, child, ErrNotFound)
	}
	pc := pn.clone()
	removeID(&pc.children, child)
	cc := cn.clone()
	removeID(&cc.parents, parent)
	nodes := cur.nodes.set(parent, pc).set(child, cc)
	// If parent is a memoized virtual join it no longer covers the maxima it
	// was minted for; drop the memo entry so a later dominator query mints a
	// correct replacement instead of reusing a non-upper-bound.
	g.dropVirtualKeyLocked(parent)
	g.publishLocked(nodes, newDomCache())
	return nil
}

// RemoveContext deletes a context that has no remaining ownership edges.
func (g *Graph) RemoveContext(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap.Load()

	n := cur.nodes.get(id)
	if n == nil {
		return fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	if len(n.parents) != 0 || len(n.children) != 0 {
		return fmt.Errorf("%v: %w", id, ErrHasEdges)
	}
	// The dominator cache carries over: an edgeless context can only have
	// dominated itself, and that entry is unreachable once the existence
	// check on the new snapshot fails.
	g.dropVirtualKeyLocked(id)
	g.publishLocked(cur.nodes.delete(id), cur.dom)
	return nil
}

// DetachContext removes every ownership edge touching id and then deletes the
// context. Used when destroying subtree leaves (e.g. delivered orders).
func (g *Graph) DetachContext(id ID) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.snap.Load()

	n := cur.nodes.get(id)
	if n == nil {
		return fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	nodes := cur.nodes
	for _, p := range n.parents {
		pc := nodes.get(p).clone()
		removeID(&pc.children, id)
		nodes = nodes.set(p, pc)
	}
	for _, c := range n.children {
		cc := nodes.get(c).clone()
		removeID(&cc.parents, id)
		nodes = nodes.set(c, cc)
	}
	nodes = nodes.delete(id)
	g.dropVirtualKeyLocked(id)
	g.publishLocked(nodes, newDomCache())
	return nil
}

// dropVirtualKeyLocked invalidates the virtual-join memo entry owned by id,
// if any. Caller holds g.mu.
func (g *Graph) dropVirtualKeyLocked(id ID) {
	if key, ok := g.virtualKey[id]; ok {
		delete(g.virtualJoin, key)
		delete(g.virtualKey, id)
	}
}

func removeID(s *[]ID, id ID) bool {
	for i, v := range *s {
		if v == id {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return true
		}
	}
	return false
}
