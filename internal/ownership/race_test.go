package ownership

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGraphSnapshotRaceStress hammers the lock-free read API from many
// goroutines while mutators create and detach leaves and flip edges. Run
// with -race. Readers resolve one snapshot per "event" and assert that every
// answer is internally consistent within that snapshot:
//
//   - the dominator exists and is an ancestor-or-self of the target,
//   - the activation path starts at the dominator, ends at the target, and
//     every step is a direct-ownership edge,
//   - every child listed for a context names that context among its parents.
//
// A target picked from the shared pool may have been detached by the time
// the reader snapshots — that surfaces as ErrNotFound, never as a torn read.
func TestGraphSnapshotRaceStress(t *testing.T) {
	g := NewGraph()
	root, _ := g.AddContext("Root")
	var spine []ID
	for i := 0; i < 8; i++ {
		room, err := g.AddContext("Room", root)
		if err != nil {
			t.Fatal(err)
		}
		spine = append(spine, room)
	}

	var pool struct {
		sync.Mutex
		ids []ID
	}
	poolPick := func(rng *rand.Rand) (ID, bool) {
		pool.Lock()
		defer pool.Unlock()
		if len(pool.ids) == 0 {
			return None, false
		}
		return pool.ids[rng.Intn(len(pool.ids))], true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		stop.Store(true)
		t.Errorf(format, args...)
	}

	// Leaf mutator: creates single- and multi-owner leaves, detaches others.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !stop.Load() {
			switch rng.Intn(4) {
			case 0, 1: // single-owner leaf
				id, err := g.AddContext("Leaf", spine[rng.Intn(len(spine))])
				if err != nil {
					fail("AddContext: %v", err)
					return
				}
				pool.Lock()
				pool.ids = append(pool.ids, id)
				pool.Unlock()
			case 2: // shared leaf
				p1 := spine[rng.Intn(len(spine))]
				p2 := spine[rng.Intn(len(spine))]
				id, err := g.AddContext("Shared", p1, p2)
				if err != nil {
					fail("AddContext shared: %v", err)
					return
				}
				pool.Lock()
				pool.ids = append(pool.ids, id)
				pool.Unlock()
			case 3: // detach one pooled leaf
				pool.Lock()
				if n := len(pool.ids); n > 0 {
					i := rng.Intn(n)
					id := pool.ids[i]
					pool.ids[i] = pool.ids[n-1]
					pool.ids = pool.ids[:n-1]
					pool.Unlock()
					if err := g.DetachContext(id); err != nil {
						fail("DetachContext(%v): %v", id, err)
						return
					}
				} else {
					pool.Unlock()
				}
			}
		}
	}()

	// Edge mutator: flips extra spine edges (low index → high index only, so
	// no attempt can form a cycle).
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for !stop.Load() {
			i := rng.Intn(len(spine) - 1)
			j := i + 1 + rng.Intn(len(spine)-i-1)
			if rng.Intn(2) == 0 {
				if err := g.AddEdge(spine[i], spine[j]); err != nil && !errors.Is(err, ErrExists) {
					fail("AddEdge: %v", err)
					return
				}
			} else {
				if err := g.RemoveEdge(spine[i], spine[j]); err != nil && !errors.Is(err, ErrNotFound) {
					fail("RemoveEdge: %v", err)
					return
				}
			}
		}
	}()

	readers := 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var lastVersion uint64
			for !stop.Load() {
				target := spine[rng.Intn(len(spine))]
				if rng.Intn(2) == 0 {
					if id, ok := poolPick(rng); ok {
						target = id
					}
				}
				dom, view, err := g.Resolve(target)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // detached before we snapshotted
					}
					fail("Resolve(%v): %v", target, err)
					return
				}
				if v := view.Version(); v < lastVersion {
					fail("snapshot version went backwards: %d after %d", v, lastVersion)
					return
				} else {
					lastVersion = v
				}
				if !view.Contains(dom) || !view.Contains(target) {
					fail("Resolve(%v) view missing dom %v or target", target, dom)
					return
				}
				if dom != target && !view.Owns(dom, target) {
					fail("dom %v does not own target %v in its own snapshot", dom, target)
					return
				}
				path, err := view.Path(dom, target)
				if err != nil {
					fail("Path(%v,%v) in resolved view: %v", dom, target, err)
					return
				}
				if path[0] != dom || path[len(path)-1] != target {
					fail("path endpoints %v; want %v..%v", path, dom, target)
					return
				}
				for i := 0; i < len(path)-1; i++ {
					if !view.OwnsDirectly(path[i], path[i+1]) {
						fail("path step %v→%v is not an edge in the snapshot", path[i], path[i+1])
						return
					}
				}
				// Children listed by the snapshot must list us back.
				children, err := view.Children(target)
				if err != nil {
					fail("Children(%v): %v", target, err)
					return
				}
				for _, ch := range children {
					parents, err := view.Parents(ch)
					if err != nil {
						fail("child %v of %v missing from its own snapshot", ch, target)
						return
					}
					if !containsID(parents, target) {
						fail("child %v does not list %v as parent in the same snapshot", ch, target)
						return
					}
				}
			}
		}(int64(100 + r))
	}

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}
