package ownership

import "testing"

// Regression tests for the virtual-join memo: entries used to survive the
// removal of their virtual context's edges (and, before the reverse index,
// relied solely on a liveness probe after DetachContext/RemoveContext), so a
// later dominator query could return a context that no longer dominates
// anything — or, once removed, a deleted context ID.

// TestVirtualJoinMemoInvalidatedByEdgeRemoval: stripping the virtual join of
// its ownership edges must not let the memo resurrect it as a dominator.
// Before the fix, Dom(a) returned the old virtual even though it owned
// neither a nor b.
func TestVirtualJoinMemoInvalidatedByEdgeRemoval(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B")
	if _, err := g.AddContext("S", a, b); err != nil {
		t.Fatal(err)
	}
	v, err := g.Dom(a)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Owns(v, a) || !g.Owns(v, b) {
		t.Fatalf("precondition: virtual %v must own both roots", v)
	}
	// The application dissolves the virtual join edge by edge. After the
	// second removal the virtual is alive but owns nothing, while the memo
	// key for {a, b} recomputes identically.
	if err := g.RemoveEdge(v, a); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(v, b); err != nil {
		t.Fatal(err)
	}
	d, err := g.Dom(a)
	if err != nil {
		t.Fatal(err)
	}
	if d == v {
		t.Fatalf("Dom(a) returned the stale virtual %v which owns nothing", v)
	}
	if d != a && !g.Owns(d, a) {
		t.Fatalf("Dom(a) = %v, but it does not own a", d)
	}
	if !g.Owns(d, b) {
		t.Fatalf("Dom(a) = %v, but it does not own the sharer b", d)
	}
}

// TestVirtualJoinMemoInvalidatedByDetach: detaching the virtual context
// itself must never let a later query return the deleted ID.
func TestVirtualJoinMemoInvalidatedByDetach(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B")
	if _, err := g.AddContext("S", a, b); err != nil {
		t.Fatal(err)
	}
	v, _ := g.Dom(a)
	if err := g.DetachContext(v); err != nil {
		t.Fatal(err)
	}
	d, err := g.Dom(b)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(d) {
		t.Fatalf("Dom(b) returned deleted context %v", d)
	}
	if d == v {
		t.Fatalf("Dom(b) resurrected the detached virtual %v", v)
	}
	if d != b && !g.Owns(d, b) {
		t.Fatalf("Dom(b) = %v, but it does not own b", d)
	}
}

// TestVirtualJoinMemoInvalidatedByRemoveContext: the RemoveContext path
// (legal once the virtual is edgeless) must drop the memo entry too.
func TestVirtualJoinMemoInvalidatedByRemoveContext(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B")
	if _, err := g.AddContext("S", a, b); err != nil {
		t.Fatal(err)
	}
	v, _ := g.Dom(a)
	if err := g.RemoveEdge(v, a); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge(v, b); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveContext(v); err != nil {
		t.Fatal(err)
	}
	d, err := g.Dom(a)
	if err != nil {
		t.Fatal(err)
	}
	if d == v || !g.Contains(d) {
		t.Fatalf("Dom(a) = %v after RemoveContext(%v); want a live context", d, v)
	}
	if !g.Owns(d, a) || !g.Owns(d, b) {
		t.Fatalf("Dom(a) = %v does not dominate the sharing roots", d)
	}
}

// TestVirtualJoinReusedWhileValid: the memo must still deduplicate identical
// queries — repeated Dom calls reuse one virtual context.
func TestVirtualJoinReusedWhileValid(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B")
	if _, err := g.AddContext("S", a, b); err != nil {
		t.Fatal(err)
	}
	v1, _ := g.Dom(a)
	v2, _ := g.Dom(b)
	if v1 != v2 {
		t.Fatalf("Dom(a)=%v Dom(b)=%v; want one shared virtual", v1, v2)
	}
	n := g.Len()
	for i := 0; i < 3; i++ {
		if v, _ := g.Dom(a); v != v1 {
			t.Fatalf("Dom(a) = %v; want memoized %v", v, v1)
		}
	}
	if g.Len() != n {
		t.Fatal("repeated Dom queries minted extra virtual contexts")
	}
}
