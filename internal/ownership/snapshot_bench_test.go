package ownership

import (
	"sync"
	"testing"
)

// buildBenchGraph assembles the castle fixture (16 rooms × 8 players × 2
// private items + 1 room-shared item) with every dominator pre-warmed, and
// returns the players (Dom/Path targets) and rooms (Children targets).
func buildBenchGraph(tb testing.TB) (*Graph, []ID, []ID) {
	tb.Helper()
	g := NewGraph()
	castle, _ := g.AddContext("Building")
	var players, rooms []ID
	for r := 0; r < 16; r++ {
		room, _ := g.AddContext("Room", castle)
		rooms = append(rooms, room)
		var roomPlayers []ID
		for p := 0; p < 8; p++ {
			pl, _ := g.AddContext("Player", room)
			roomPlayers = append(roomPlayers, pl)
			for i := 0; i < 2; i++ {
				if _, err := g.AddContext("Item", pl); err != nil {
					tb.Fatal(err)
				}
			}
		}
		if _, err := g.AddContext("Item", append([]ID{room}, roomPlayers...)...); err != nil {
			tb.Fatal(err)
		}
		players = append(players, roomPlayers...)
	}
	// Warm the dominator cache (and mint any virtual joins) until the
	// membership is stable, so the measured loop is pure reads.
	for {
		before := g.Len()
		for _, id := range g.Snapshot().IDs() {
			if _, err := g.Dom(id); err != nil {
				tb.Fatal(err)
			}
		}
		if g.Len() == before {
			break
		}
	}
	return g, players, rooms
}

// rwGraph replicates the pre-COW read path for comparison: one process-wide
// RWMutex around plain adjacency maps and a warmed dominator cache — every
// read takes the read lock, exactly like the old Graph.
type rwGraph struct {
	mu       sync.RWMutex
	children map[ID][]ID
	parents  map[ID][]ID
	dom      map[ID]ID
}

func newRWGraph(tb testing.TB, g *Graph) *rwGraph {
	tb.Helper()
	s := g.Snapshot()
	r := &rwGraph{
		children: make(map[ID][]ID),
		parents:  make(map[ID][]ID),
		dom:      make(map[ID]ID),
	}
	for _, id := range s.IDs() {
		ch, _ := s.Children(id)
		pa, _ := s.Parents(id)
		d, err := s.Dom(id)
		if err != nil {
			tb.Fatal(err)
		}
		r.children[id] = ch
		r.parents[id] = pa
		r.dom[id] = d
	}
	return r
}

func (r *rwGraph) Dom(id ID) ID {
	r.mu.RLock()
	d := r.dom[id]
	r.mu.RUnlock()
	return d
}

func (r *rwGraph) Children(id ID) []ID {
	r.mu.RLock()
	out := append([]ID(nil), r.children[id]...)
	r.mu.RUnlock()
	return out
}

func (r *rwGraph) Path(anc, desc ID) []ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if anc == desc {
		return []ID{anc}
	}
	prev := map[ID]ID{desc: None}
	queue := []ID{desc}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range r.parents[cur] {
			if _, seen := prev[p]; seen {
				continue
			}
			prev[p] = cur
			if p == anc {
				var path []ID
				for c := anc; c != None; c = prev[c] {
					path = append(path, c)
				}
				return path
			}
			queue = append(queue, p)
		}
	}
	return nil
}

// BenchmarkGraphReadParallel measures the per-event read mix (Dom + Path +
// Children, the 2–4 queries event admission issues) under parallel load:
// the copy-on-write snapshot versus the RWMutex baseline that matches the
// pre-COW implementation. Run with -cpu 1,4,8 on real cores to see the
// snapshot hold flat while the RWMutex path serializes on the lock's
// contended cache line.
func BenchmarkGraphReadParallel(b *testing.B) {
	b.Run("snapshot", func(b *testing.B) {
		g, players, rooms := buildBenchGraph(b)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				p := players[i%len(players)]
				s := g.Snapshot()
				d, err := s.Dom(p)
				if err != nil {
					b.Fatal(err)
				}
				if d != p {
					if _, err := s.Path(d, p); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := s.Children(rooms[i%len(rooms)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("rwmutex", func(b *testing.B) {
		g, players, rooms := buildBenchGraph(b)
		r := newRWGraph(b, g)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				p := players[i%len(players)]
				d := r.Dom(p)
				if d != p {
					if path := r.Path(d, p); path == nil {
						b.Fatal("no path")
					}
				}
				_ = r.Children(rooms[i%len(rooms)])
				i++
			}
		})
	})
}
