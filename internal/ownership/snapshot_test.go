package ownership

import (
	"errors"
	"testing"
)

// TestSnapshotImmutableAcrossMutations: a snapshot taken before a batch of
// mutations must keep answering from the old version of the network.
func TestSnapshotImmutableAcrossMutations(t *testing.T) {
	g := NewGraph()
	root, _ := g.AddContext("Root")
	child, _ := g.AddContext("Child", root)

	old := g.Snapshot()
	oldVersion := old.Version()

	leaf, err := g.AddContext("Leaf", child)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.DetachContext(leaf); err != nil {
		t.Fatal(err)
	}
	if err := g.DetachContext(child); err != nil {
		t.Fatal(err)
	}

	// The old snapshot still sees the original two contexts, no leaf.
	if old.Version() != oldVersion {
		t.Fatalf("snapshot version changed: %d → %d", oldVersion, old.Version())
	}
	if !old.Contains(child) {
		t.Fatal("old snapshot lost a context that existed when it was taken")
	}
	if old.Contains(leaf) {
		t.Fatal("old snapshot sees a context created after it was taken")
	}
	if ch, err := old.Children(root); err != nil || len(ch) != 1 || ch[0] != child {
		t.Fatalf("old snapshot Children(root) = %v, %v; want [child]", ch, err)
	}
	if old.Len() != 2 {
		t.Fatalf("old snapshot Len = %d; want 2", old.Len())
	}
	// And the current snapshot sees the mutated network.
	cur := g.Snapshot()
	if cur.Contains(child) || cur.Contains(leaf) {
		t.Fatal("current snapshot still contains detached contexts")
	}
	if cur.Len() != 1 {
		t.Fatalf("current snapshot Len = %d; want 1", cur.Len())
	}
}

// TestSnapshotConsistentQueries: Dom, Path and Children against one snapshot
// stay mutually consistent even while the graph mutates underneath.
func TestSnapshotConsistentQueries(t *testing.T) {
	g := NewGraph()
	room, _ := g.AddContext("Room")
	p1, _ := g.AddContext("Player", room)
	p2, _ := g.AddContext("Player", room)
	item, _ := g.AddContext("Item", p1, p2)

	// p1 shares item with the incomparable p2, so dom(p1) = room.
	dom, view, err := g.Resolve(p1)
	if err != nil {
		t.Fatal(err)
	}
	if dom != room {
		t.Fatalf("dom(p1) = %v; want room %v", dom, room)
	}

	// Mutate heavily after the snapshot was taken.
	if err := g.RemoveEdge(p2, item); err != nil {
		t.Fatal(err)
	}
	if err := g.DetachContext(item); err != nil {
		t.Fatal(err)
	}

	// The captured view still resolves the whole admission sequence,
	// including the now-detached shared item.
	path, err := view.Path(dom, item)
	if err != nil {
		t.Fatalf("Path on captured view: %v", err)
	}
	if path[0] != dom || path[len(path)-1] != item {
		t.Fatalf("path endpoints %v; want %v..%v", path, dom, item)
	}
	for i := 0; i < len(path)-1; i++ {
		if !view.OwnsDirectly(path[i], path[i+1]) {
			t.Fatalf("path step %v→%v is not a direct edge in the view", path[i], path[i+1])
		}
	}
	// While the live graph has moved on.
	if _, err := g.Path(dom, item); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live Path after detach = %v; want ErrNotFound", err)
	}
}

// TestResolveReturnsViewContainingMintedVirtual: when the dominator query has
// to insert a virtual join, the snapshot returned by Resolve must already
// contain it, so path activation works without re-reading the graph.
func TestResolveReturnsViewContainingMintedVirtual(t *testing.T) {
	g := NewGraph()
	a, _ := g.AddContext("A")
	b, _ := g.AddContext("B")
	if _, err := g.AddContext("S", a, b); err != nil {
		t.Fatal(err)
	}

	stale := g.Snapshot() // taken before any dominator query
	// a and b are incomparable roots sharing a descendant: dom(a) is the
	// virtual join of {a, b}, minted by this very query.
	dom, view, err := g.Resolve(a)
	if err != nil {
		t.Fatal(err)
	}
	if cls, _ := view.Class(dom); dom == a || cls != VirtualClass {
		t.Fatalf("dom(a) = %v (class %q); want a virtual context", dom, cls)
	}
	if !view.Contains(dom) {
		t.Fatal("Resolve returned a view that does not contain the minted virtual")
	}
	if _, err := view.Path(dom, a); err != nil {
		t.Fatalf("Path(dom, a) on returned view: %v", err)
	}
	if stale.Contains(dom) {
		t.Fatal("pre-mint snapshot must not see the virtual context")
	}
}

// TestTrieGrowthAndSparseDelete exercises the persistent node map across a
// radix-level growth boundary and after deletions.
func TestTrieGrowthAndSparseDelete(t *testing.T) {
	g := NewGraph()
	root, _ := g.AddContext("Root")
	var ids []ID
	// Cross the 64- and 4096-entry block boundaries.
	for i := 0; i < 5000; i++ {
		id, err := g.AddContext("Leaf", root)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if g.Len() != 5001 {
		t.Fatalf("Len = %d; want 5001", g.Len())
	}
	removed := 0
	for i := 0; i < len(ids); i += 2 {
		if err := g.DetachContext(ids[i]); err != nil {
			t.Fatal(err)
		}
		removed++
	}
	if g.Len() != 5001-removed {
		t.Fatalf("Len after deletes = %d; want %d", g.Len(), 5001-removed)
	}
	for i, id := range ids {
		want := i%2 == 1
		if g.Contains(id) != want {
			t.Fatalf("Contains(%v) = %v; want %v", id, !want, want)
		}
	}
	// Children of root reflect the survivors, in creation order.
	ch, err := g.Children(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 2500 {
		t.Fatalf("root has %d children; want 2500", len(ch))
	}
}
