package ownership

import (
	"fmt"
	"sort"
	"strings"
)

// Snapshot is an immutable view of the ownership network at one version.
// Every read resolves against the snapshot's persistent node map with zero
// lock acquisitions, so concurrent event admission never contends on the
// graph; mutations build and publish the next snapshot (see Graph).
//
// An event that needs several queries (dominator, activation path, children)
// should resolve one snapshot — Graph.Resolve returns one together with the
// dominator — and issue all of them against it, observing a single consistent
// version of the network instead of N racy point queries.
type Snapshot struct {
	g       *Graph
	nodes   *trie
	version uint64
	// dom memoizes dominator results. The handle may be shared with earlier
	// snapshots when the publishing mutation proved the entries carry over
	// (leaf creation audit); fills re-validate currency under the writer
	// mutex, so a shared handle never receives an entry computed against a
	// superseded snapshot.
	dom *domCache
}

// Version returns the mutation counter at which this snapshot was taken.
func (s *Snapshot) Version() uint64 { return s.version }

// Len reports the number of contexts in the snapshot.
func (s *Snapshot) Len() int { return s.nodes.len() }

// Contains reports whether the context exists in the snapshot.
func (s *Snapshot) Contains(id ID) bool { return s.nodes.get(id) != nil }

// Class reports the class of a context.
func (s *Snapshot) Class(id ID) (string, error) {
	n := s.nodes.get(id)
	if n == nil {
		return "", fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	return n.class, nil
}

// Children returns a copy of the direct children of id.
func (s *Snapshot) Children(id ID) ([]ID, error) {
	n := s.nodes.get(id)
	if n == nil {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	out := make([]ID, len(n.children))
	copy(out, n.children)
	return out, nil
}

// Parents returns a copy of the direct owners of id.
func (s *Snapshot) Parents(id ID) ([]ID, error) {
	n := s.nodes.get(id)
	if n == nil {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	out := make([]ID, len(n.parents))
	copy(out, n.parents)
	return out, nil
}

// OwnsDirectly reports whether parent directly owns child.
func (s *Snapshot) OwnsDirectly(parent, child ID) bool {
	n := s.nodes.get(parent)
	if n == nil {
		return false
	}
	return containsID(n.children, child)
}

// Owns reports whether anc transitively owns desc (strictly).
func (s *Snapshot) Owns(anc, desc ID) bool {
	if anc == desc || s.nodes.get(anc) == nil {
		return false
	}
	return s.reachable(anc, desc)
}

// Desc returns the strict descendants of id (excluding id itself), sorted.
func (s *Snapshot) Desc(id ID) ([]ID, error) {
	if s.nodes.get(id) == nil {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	set := s.descSet(id)
	out := make([]ID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Roots returns the contexts with no owners, sorted.
func (s *Snapshot) Roots() []ID {
	var out []ID
	s.nodes.walk(func(n *node) {
		if len(n.parents) == 0 {
			out = append(out, n.id)
		}
	})
	return out
}

// IDs returns every context in the snapshot, sorted.
func (s *Snapshot) IDs() []ID {
	out := make([]ID, 0, s.nodes.len())
	s.nodes.walk(func(n *node) { out = append(out, n.id) })
	return out
}

// Path returns a downward direct-ownership path from anc to desc, inclusive
// on both ends. If anc == desc the path is the single context. The runtime
// activates the returned contexts top-down when escorting an event from its
// dominator to its target (Algorithm 2, activatePath).
func (s *Snapshot) Path(anc, desc ID) ([]ID, error) {
	if s.nodes.get(anc) == nil {
		return nil, fmt.Errorf("%v: %w", anc, ErrNotFound)
	}
	if s.nodes.get(desc) == nil {
		return nil, fmt.Errorf("%v: %w", desc, ErrNotFound)
	}
	if anc == desc {
		return []ID{anc}, nil
	}
	// BFS upward from desc to anc following parent edges; shortest path.
	prev := map[ID]ID{desc: None}
	queue := []ID{desc}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range s.nodes.get(cur).parents {
			if _, seen := prev[p]; seen {
				continue
			}
			prev[p] = cur
			if p == anc {
				var path []ID
				for c := anc; c != None; c = prev[c] {
					path = append(path, c)
				}
				return path, nil
			}
			queue = append(queue, p)
		}
	}
	return nil, fmt.Errorf("%v→%v: %w", anc, desc, ErrNoPath)
}

// reachable reports whether to is reachable from from via child edges.
func (s *Snapshot) reachable(from, to ID) bool {
	if from == to {
		return true
	}
	seen := map[ID]bool{from: true}
	stack := []ID{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range s.nodes.get(cur).children {
			if c == to {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// descSet computes the strict descendant set of id.
func (s *Snapshot) descSet(id ID) map[ID]bool {
	set := make(map[ID]bool)
	stack := []ID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range s.nodes.get(cur).children {
			if !set[c] {
				set[c] = true
				stack = append(stack, c)
			}
		}
	}
	return set
}

// ancSet computes the ancestors-or-self set of id.
func (s *Snapshot) ancSet(id ID) map[ID]bool {
	set := map[ID]bool{id: true}
	stack := []ID{id}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range s.nodes.get(cur).parents {
			if !set[p] {
				set[p] = true
				stack = append(stack, p)
			}
		}
	}
	return set
}

// DumpDOT renders the snapshot in Graphviz DOT form (debugging aid).
func (s *Snapshot) DumpDOT() string {
	var b strings.Builder
	b.WriteString("digraph ownership {\n")
	s.nodes.walk(func(n *node) {
		fmt.Fprintf(&b, "  %d [label=%q];\n", uint64(n.id), fmt.Sprintf("%s#%d", n.class, uint64(n.id)))
		for _, c := range n.children {
			fmt.Fprintf(&b, "  %d -> %d;\n", uint64(n.id), uint64(c))
		}
	})
	b.WriteString("}\n")
	return b.String()
}

func containsID(s []ID, id ID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}
