// Package core implements the AEON runtime protocol of § 4: events are
// sequenced at the dominator of their target context, activate contexts
// top-down along ownership paths with fair FIFO read/write activation
// queues, execute method calls across contexts (synchronous, asynchronous,
// and crabbed tail calls), and release everything in reverse order at event
// termination — yielding strict serializability with deadlock and
// starvation freedom while maximizing parallelism.
package core

import "errors"

var (
	// ErrClosed is returned when submitting to a closed runtime.
	ErrClosed = errors.New("core: runtime closed")
	// ErrUnknownContext is returned when a context ID is not registered.
	ErrUnknownContext = errors.New("core: unknown context")
	// ErrUnknownMethod is returned when a method is not declared on the
	// target's contextclass.
	ErrUnknownMethod = errors.New("core: unknown method")
	// ErrNotOwned is returned when a method call targets a context that is
	// not directly owned by the caller (§ 3: "access to a context is only
	// granted to the contexts that directly own it").
	ErrNotOwned = errors.New("core: callee not directly owned by caller")
	// ErrAccessDenied is returned when a call violates the method's
	// declared MayAccess set.
	ErrAccessDenied = errors.New("core: access not declared in schema")
	// ErrReadOnlyEvent is returned when a readonly event tries to invoke a
	// mutating method.
	ErrReadOnlyEvent = errors.New("core: readonly event invoking mutating method")
	// ErrCrabbed is returned when an event calls through a context it has
	// already released with Crab.
	ErrCrabbed = errors.New("core: context already crab-released by this event")
	// ErrOwnerNotHeld is returned when creating a context under owners the
	// event does not currently hold.
	ErrOwnerNotHeld = errors.New("core: owner context not held by event")
	// ErrAcquireTimeout is returned when lock acquisition exceeds the
	// configured timeout (used as a deadlock watchdog in tests; the
	// protocol itself is deadlock-free for valid ownership networks).
	ErrAcquireTimeout = errors.New("core: context activation timed out")
	// ErrMigrating is returned when an operation races an in-progress
	// migration in a way the runtime cannot serve.
	ErrMigrating = errors.New("core: context is migrating")
	// ErrBackpressure is returned when an asynchronous submission finds the
	// target server's executor queue full. Callers should retry later or
	// shed load; synchronous Submit is unaffected (it runs on the caller's
	// goroutine).
	ErrBackpressure = errors.New("core: server executor queue full")
	// ErrNotLocal is returned in multi-process deployments when an event's
	// sequencing point is hosted on a server another process embodies and no
	// forwarder is installed to delegate it there (see Runtime.SetRemote).
	ErrNotLocal = errors.New("core: context not hosted on a local server")
)
