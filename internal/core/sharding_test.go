package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// TestDirectoryShardedStaleness verifies the forwarding-window semantics
// survive sharding: each context's staleness window is tracked on its own
// shard, independent of moves on other shards.
func TestDirectoryShardedStaleness(t *testing.T) {
	d := NewDirectory(80 * time.Millisecond)
	// Pick two IDs that land on different shards so the windows exercise
	// distinct stripes.
	a, b := ownership.ID(1), ownership.ID(2)
	for shardFor(b) == shardFor(a) {
		b++
	}
	d.Place(a, 10)
	d.Place(b, 20)

	if err := d.Move(a, 11); err != nil {
		t.Fatal(err)
	}
	// a forwards through its old host; b is untouched.
	host, via, fwd, ok := d.Route(a)
	if !ok || !fwd || host != 11 || via != 10 {
		t.Fatalf("Route(a) = %v %v %v %v; want 11 via 10 forwarded", host, via, fwd, ok)
	}
	if _, _, fwd, _ := d.Route(b); fwd {
		t.Fatal("move on a's shard leaked a forwarding window onto b")
	}
	// After the window expires, a routes directly again.
	time.Sleep(100 * time.Millisecond)
	if _, _, fwd, _ := d.Route(a); fwd {
		t.Fatal("forwarding window did not expire")
	}
}

func TestDirectorySnapshot(t *testing.T) {
	d := NewDirectory(time.Second)
	const n = 300
	for i := 1; i <= n; i++ {
		d.Place(ownership.ID(i), cluster.ServerID(1+i%4))
	}
	if err := d.Move(ownership.ID(7), 9); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if len(snap) != n {
		t.Fatalf("snapshot size = %d; want %d", len(snap), n)
	}
	if snap[7] != 9 {
		t.Fatalf("snapshot[7] = %v; want moved host 9", snap[7])
	}
	for i := 1; i <= n; i++ {
		if i == 7 {
			continue
		}
		if want := cluster.ServerID(1 + i%4); snap[ownership.ID(i)] != want {
			t.Fatalf("snapshot[%d] = %v; want %v", i, snap[ownership.ID(i)], want)
		}
	}
}

// blockSchema is a minimal schema for executor tests: "wait" parks until
// its channel argument closes, "inc" bumps an int, "spawnInc" dispatches an
// inc sub-event at the context given in args[0].
func blockSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	b := s.MustDeclareClass("B", func() any { return new(int) })
	b.MustDeclareMethod("wait", func(call schema.Call, args []any) (any, error) {
		started := args[0].(chan struct{})
		release := args[1].(chan struct{})
		close(started)
		<-release
		return nil, nil
	})
	b.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		n := call.State().(*int)
		*n++
		return *n, nil
	})
	b.MustDeclareMethod("spawnInc", func(call schema.Call, args []any) (any, error) {
		call.Dispatch(args[0].(ownership.ID), "inc")
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newExecTestRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, err := New(blockSchema(t), ownership.NewGraph(), cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestSubmitAsyncBackpressure saturates a 1-worker/1-slot executor and
// verifies the overflow submission fails fast with the typed error.
func TestSubmitAsyncBackpressure(t *testing.T) {
	rt := newExecTestRuntime(t, Config{ExecWorkersPerServer: 1, ExecQueueDepth: 1})
	target, err := rt.CreateContext("B")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	running := rt.SubmitAsync(target, "wait", started, release)
	<-started // the single worker is now occupied

	queued := rt.SubmitAsync(target, "wait", make(chan struct{}, 1), release)
	// The queue slot is taken synchronously by trySubmit, so the third
	// submission must bounce regardless of scheduling.
	bounced := rt.SubmitAsync(target, "inc")
	if _, err := bounced.Wait(); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overflow submission err = %v; want ErrBackpressure", err)
	}
	if rt.Backpressure.Value() == 0 {
		t.Fatal("Backpressure counter not incremented")
	}

	close(release)
	if _, err := running.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Close()
}

// TestSubEventInlineFallback fills the executor queue and checks that a
// dispatched sub-event still runs (inline on the dispatcher) rather than
// being dropped or deadlocking.
func TestSubEventInlineFallback(t *testing.T) {
	rt := newExecTestRuntime(t, Config{ExecWorkersPerServer: 1, ExecQueueDepth: 1})
	target, err := rt.CreateContext("B")
	if err != nil {
		t.Fatal(err)
	}
	counterCtx, err := rt.CreateContext("B")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	running := rt.SubmitAsync(target, "wait", started, release)
	<-started
	// Fill the single queue slot.
	queued := rt.SubmitAsync(target, "wait", make(chan struct{}, 1), release)

	// Synchronous submit is unaffected by executor saturation; its
	// dispatched sub-event finds the queue full and runs inline, so the
	// side effect is visible once the runtime drains.
	if _, err := rt.Submit(counterCtx, "spawnInc", counterCtx); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := running.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := queued.Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Close() // waits for sub-events
	c, err := rt.Context(counterCtx)
	if err != nil {
		t.Fatal(err)
	}
	if n := *c.State().(*int); n != 1 {
		t.Fatalf("sub-event effect = %d; want 1", n)
	}
	if rt.SubEventErrors.Value() != 0 {
		t.Fatalf("sub-event errors = %d", rt.SubEventErrors.Value())
	}
}

// TestRecentLatencyMerged feeds a constant latency through the striped
// record path and verifies the merged EWMA reproduces it — the signal the
// eManager's SLA policy consumes must not be skewed by striping.
func TestRecentLatencyMerged(t *testing.T) {
	rt := newExecTestRuntime(t, Config{})
	defer rt.Close()
	const d = 10 * time.Millisecond
	const samples = 256 // several observations on every EWMA stripe
	for i := uint64(0); i < samples; i++ {
		rt.recordLatency(i, d)
	}
	got := rt.RecentLatency()
	if got < 9*time.Millisecond || got > 11*time.Millisecond {
		t.Fatalf("RecentLatency = %v; want ~%v", got, d)
	}
	if n := rt.Latency.Count(); n != samples {
		t.Fatalf("Latency.Count = %d; want %d", n, samples)
	}
	if q := rt.Latency.Quantile(0.5); q < 8*time.Millisecond || q > 13*time.Millisecond {
		t.Fatalf("merged p50 = %v; want ~%v", q, d)
	}
}

// TestShardedRuntimeStress hammers every sharded structure at once under
// -race: concurrent context creation, event submission, migration
// (LockForMigration + Rehost), and destruction, spread across shards and
// servers. It asserts nothing beyond error-freeness and final accounting —
// the point is that the race detector sees the full interleaving space.
func TestShardedRuntimeStress(t *testing.T) {
	rt := newTestRuntime(t, 4)
	servers := rt.Cluster().Servers()

	// Shared rooms: submitters and migrators race on these.
	const nShared = 32
	shared := make([]ownership.ID, nShared)
	for i := range shared {
		id, err := rt.CreateContext("Room")
		if err != nil {
			t.Fatal(err)
		}
		shared[i] = id
	}

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)

	// Submitters: events on random shared rooms.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if _, err := rt.Submit(shared[rng.Intn(nShared)], "noop"); err != nil {
					errs <- fmt.Errorf("submit: %w", err)
					return
				}
			}
		}(int64(g))
	}

	// Creators/destroyers: private context lifecycles across shards.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id, err := rt.CreateContext("Room")
				if err != nil {
					errs <- fmt.Errorf("create: %w", err)
					return
				}
				if _, err := rt.Submit(id, "noop"); err != nil {
					errs <- fmt.Errorf("submit private: %w", err)
					return
				}
				if err := rt.DestroyContext(id); err != nil {
					errs <- fmt.Errorf("destroy: %w", err)
					return
				}
			}
		}(int64(goroutines + g))
	}

	// Migrators: rehost random shared rooms between servers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters/2; i++ {
				id := shared[rng.Intn(nShared)]
				release, err := rt.LockForMigration(id)
				if err != nil {
					errs <- fmt.Errorf("lock for migration: %w", err)
					return
				}
				to := servers[rng.Intn(len(servers))].ID()
				if err := rt.Rehost(id, to); err != nil {
					release()
					errs <- fmt.Errorf("rehost: %w", err)
					return
				}
				release()
			}
		}(int64(100 + g))
	}

	// Async submitters: exercise the executor pools concurrently.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				f := rt.SubmitAsync(shared[rng.Intn(nShared)], "noop")
				if _, err := f.Wait(); err != nil && !errors.Is(err, ErrBackpressure) {
					errs <- fmt.Errorf("async: %w", err)
					return
				}
			}
		}(int64(200 + g))
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// All private contexts were destroyed: only the shared rooms remain.
	if n := rt.Directory().Len(); n != nShared {
		t.Fatalf("directory len = %d; want %d", n, nShared)
	}
	if got := rt.reg.len(); got != nShared {
		t.Fatalf("registry len = %d; want %d", got, nShared)
	}
}
