package core

import (
	"sync"

	"aeon/internal/ownership"
)

// event is one in-flight AEON event (Algorithm 1's Event plus the runtime
// bookkeeping: held contexts in acquisition order, outstanding asynchronous
// calls, and sub-events dispatched within the event).
type event struct {
	id     uint64
	mode   AccessMode
	target ownership.ID
	method string
	dom    ownership.ID

	mu       sync.Mutex
	held     []*Context // acquisition order
	heldSet  map[ownership.ID]*heldState
	subs     []subEvent
	finished bool

	asyncWG sync.WaitGroup
}

type heldState struct {
	ctx      *Context
	released bool // crab-released early
	crabbed  bool // no further calls may route through this context
}

type subEvent struct {
	target ownership.ID
	method string
	args   []any
}

func newEvent(id uint64, mode AccessMode, target ownership.ID, method string) *event {
	return &event{
		id:      id,
		mode:    mode,
		target:  target,
		method:  method,
		heldSet: make(map[ownership.ID]*heldState, 4),
	}
}

// holds reports whether the event currently holds the context (and has not
// crab-released it).
func (e *event) holds(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.heldSet[id]
	return ok && !h.released
}

// crabbed reports whether the event crab-released the context.
func (e *event) crabbedCtx(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.heldSet[id]
	return ok && h.crabbed
}

// recordHold registers a newly acquired context. It returns false when the
// context was already recorded (a same-event race between two async calls;
// the duplicate acquisition was re-entrant and cost nothing).
func (e *event) recordHold(c *Context) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.heldSet[c.ID()]; ok {
		return false
	}
	e.heldSet[c.ID()] = &heldState{ctx: c}
	e.held = append(e.held, c)
	return true
}

// markCrab flags the context as crabbed: no further calls may route through
// it, and its activation is dropped as soon as its current handler returns.
func (e *event) markCrab(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.heldSet[id]
	if !ok || h.crabbed {
		return false
	}
	h.crabbed = true
	return true
}

// markCrabReleasable atomically claims the early release of a crabbed
// context: it returns the hold exactly once, after Crab was called and
// before event termination.
func (e *event) markCrabReleasable(id ownership.ID) *heldState {
	e.mu.Lock()
	defer e.mu.Unlock()
	h, ok := e.heldSet[id]
	if !ok || !h.crabbed || h.released {
		return nil
	}
	h.released = true
	return h
}

// releaseAll releases every still-held context in reverse acquisition order
// (§ 4: "locks on the contexts accessed during an event are released in the
// reverse order on which they are locked").
func (e *event) releaseAll() {
	e.mu.Lock()
	held := make([]*heldState, 0, len(e.held))
	for _, c := range e.held {
		held = append(held, e.heldSet[c.ID()])
	}
	e.finished = true
	e.mu.Unlock()

	for i := len(held) - 1; i >= 0; i-- {
		h := held[i]
		if h.released {
			continue
		}
		h.released = true
		h.ctx.lock.release(e.id)
	}
}

// addSub queues a sub-event for dispatch after completion.
func (e *event) addSub(target ownership.ID, method string, args []any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subs = append(e.subs, subEvent{target: target, method: method, args: args})
}

// takeSubs returns and clears the queued sub-events.
func (e *event) takeSubs() []subEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	subs := e.subs
	e.subs = nil
	return subs
}

// Future is the client-side handle of an asynchronous event submission.
type Future struct {
	done chan struct{}
	res  any
	err  error
}

func newFuture() *Future {
	return &Future{done: make(chan struct{})}
}

func (f *Future) complete(res any, err error) {
	f.res = res
	f.err = err
	close(f.done)
}

// Wait blocks until the event completes and returns its result.
func (f *Future) Wait() (any, error) {
	<-f.done
	return f.res, f.err
}

// Done returns a channel closed when the event completes.
func (f *Future) Done() <-chan struct{} { return f.done }
