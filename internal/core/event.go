package core

import (
	"sync"

	"aeon/internal/ownership"
)

// event is one in-flight AEON event (Algorithm 1's Event plus the runtime
// bookkeeping: held contexts in acquisition order, outstanding asynchronous
// calls, and sub-events dispatched within the event).
type event struct {
	id     uint64
	mode   AccessMode
	target ownership.ID
	method string
	dom    ownership.ID

	mu       sync.Mutex
	held     []heldEntry // acquisition order
	heldBuf  [4]heldEntry
	subs     []subEvent
	finished bool

	asyncWG sync.WaitGroup
}

// heldEntry records one context hold inline in the event (no per-hold heap
// allocation; lookups are linear scans — events hold a handful of contexts).
// Pointers into e.held are only ever used under e.mu and never retained
// across an append.
type heldEntry struct {
	ctx      *Context
	released bool // crab-released early
	crabbed  bool // no further calls may route through this context
}

type subEvent struct {
	target ownership.ID
	method string
	args   []any
}

// eventPool recycles event structs: one event is born and dies per Submit,
// and at ~1M events/s the allocation churn alone throttles multi-core
// scaling (GC sweep serializes on runtime-internal locks). Events are
// returned to the pool by putEvent only after runWith is completely done
// with them (asyncWG drained, subs taken, locks released).
var eventPool = sync.Pool{New: func() any { return new(event) }}

func newEvent(id uint64, mode AccessMode, target ownership.ID, method string) *event {
	e := eventPool.Get().(*event)
	e.id = id
	e.mode = mode
	e.target = target
	e.method = method
	e.dom = ownership.None
	e.finished = false
	e.held = e.heldBuf[:0]
	return e
}

// putEvent returns a finished event to the pool. The caller must guarantee
// no goroutine still references it (all async calls joined, subs taken).
func putEvent(e *event) {
	clear(e.heldBuf[:]) // drop *Context references so contexts can be GC'd
	e.held = nil
	e.subs = nil
	eventPool.Put(e)
}

// find returns the hold entry for a context, or nil. Caller holds e.mu; the
// pointer must not be kept across any mutation of e.held.
func (e *event) find(id ownership.ID) *heldEntry {
	for i := range e.held {
		if e.held[i].ctx.id == id {
			return &e.held[i]
		}
	}
	return nil
}

// holds reports whether the event currently holds the context (and has not
// crab-released it).
func (e *event) holds(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.find(id)
	return h != nil && !h.released
}

// crabbed reports whether the event crab-released the context.
func (e *event) crabbedCtx(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.find(id)
	return h != nil && h.crabbed
}

// recordHold registers a newly acquired context. It returns false when the
// context was already recorded (a same-event race between two async calls;
// the duplicate acquisition was re-entrant and cost nothing).
func (e *event) recordHold(c *Context) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.find(c.id) != nil {
		return false
	}
	e.held = append(e.held, heldEntry{ctx: c})
	return true
}

// markCrab flags the context as crabbed: no further calls may route through
// it, and its activation is dropped as soon as its current handler returns.
func (e *event) markCrab(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.find(id)
	if h == nil || h.crabbed {
		return false
	}
	h.crabbed = true
	return true
}

// markCrabReleasable atomically claims the early release of a crabbed
// context: it reports true exactly once, after Crab was called and before
// event termination.
func (e *event) markCrabReleasable(id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.find(id)
	if h == nil || !h.crabbed || h.released {
		return false
	}
	h.released = true
	return true
}

// releaseAll releases every still-held context in reverse acquisition order
// (§ 4: "locks on the contexts accessed during an event are released in the
// reverse order on which they are locked").
func (e *event) releaseAll() {
	e.mu.Lock()
	var buf [8]*Context
	rel := buf[:0]
	for i := len(e.held) - 1; i >= 0; i-- {
		h := &e.held[i]
		if h.released {
			continue
		}
		h.released = true
		rel = append(rel, h.ctx)
	}
	e.finished = true
	e.mu.Unlock()

	for _, c := range rel {
		c.lock.release(e.id)
	}
}

// addSub queues a sub-event for dispatch after completion.
func (e *event) addSub(target ownership.ID, method string, args []any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subs = append(e.subs, subEvent{target: target, method: method, args: args})
}

// takeSubs returns and clears the queued sub-events.
func (e *event) takeSubs() []subEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	subs := e.subs
	e.subs = nil
	return subs
}

// Future is the client-side handle of an asynchronous event submission.
type Future struct {
	done chan struct{}
	res  any
	err  error
}

func newFuture() *Future {
	return &Future{done: make(chan struct{})}
}

func (f *Future) complete(res any, err error) {
	f.res = res
	f.err = err
	close(f.done)
}

// Wait blocks until the event completes and returns its result.
func (f *Future) Wait() (any, error) {
	<-f.done
	return f.res, f.err
}

// Done returns a channel closed when the event completes.
func (f *Future) Done() <-chan struct{} { return f.done }
