package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// TestAccessDeniedBySchema: calls outside the declared MayAccess set fail
// even when ownership would allow them.
func TestAccessDeniedBySchema(t *testing.T) {
	s := schema.New()
	parent := s.MustDeclareClass("Parent", nil)
	s.MustDeclareClass("Child", func() any { return &itemState{} }).
		MustDeclareMethod("add", func(call schema.Call, args []any) (any, error) {
			return nil, nil
		})
	// sneaky declares no access to Child.
	parent.MustDeclareMethod("sneaky", func(call schema.Call, args []any) (any, error) {
		return call.Sync(args[0].(ownership.ID), "add")
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	p, _ := rt.CreateContext("Parent")
	c, _ := rt.CreateContext("Child", p)
	_, err := rt.Submit(p, "sneaky", c)
	if !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v; want ErrAccessDenied", err)
	}
}

// TestROEventRejectsMutatingCall: a readonly event must not execute a
// mutating method even via a (misdeclared) runtime path.
func TestROEventRejectsMutatingCall(t *testing.T) {
	s := schema.New()
	cls := s.MustDeclareClass("C", func() any { return &itemState{} })
	cls.MustDeclareMethod("mutate", func(call schema.Call, args []any) (any, error) {
		call.State().(*itemState).Gold++
		return nil, nil
	})
	// Schema-level RO check is bypassed by calling a *self* method (the
	// reflexive exception): the runtime must still refuse.
	cls.MustDeclareMethod("readSneaky", func(call schema.Call, args []any) (any, error) {
		return call.Sync(args[0].(ownership.ID), "mutate")
	}, schema.RO())
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	a, _ := rt.CreateContext("C")
	child, _ := rt.CreateContext("C", a)
	_, err := rt.Submit(a, "readSneaky", child)
	if !errors.Is(err, ErrReadOnlyEvent) {
		t.Fatalf("err = %v; want ErrReadOnlyEvent", err)
	}
}

// TestCrabThenCallFails: after crabbing, further calls through the crabbed
// context are rejected.
func TestCrabThenCallFails(t *testing.T) {
	s := schema.New()
	parent := s.MustDeclareClass("Parent", nil)
	s.MustDeclareClass("Child", func() any { return &itemState{} }).
		MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) {
			return nil, nil
		})
	parent.MustDeclareMethod("doubleCrab", func(call schema.Call, args []any) (any, error) {
		c1 := args[0].(ownership.ID)
		c2 := args[1].(ownership.ID)
		if err := call.Crab(c1, "noop"); err != nil {
			return nil, err
		}
		// Second call through the crabbed parent must fail.
		err := call.Crab(c2, "noop")
		if !errors.Is(err, ErrCrabbed) {
			return nil, errors.New("second crab should have failed")
		}
		if _, err := call.Sync(c2, "noop"); !errors.Is(err, ErrCrabbed) {
			return nil, errors.New("sync after crab should have failed")
		}
		return "ok", nil
	}, schema.MayCall("Child", "noop"))
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	p, _ := rt.CreateContext("Parent")
	c1, _ := rt.CreateContext("Child", p)
	c2, _ := rt.CreateContext("Child", p)
	res, err := rt.Submit(p, "doubleCrab", c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if res != "ok" {
		t.Fatalf("res = %v", res)
	}
}

// TestCrabPreservesOrdering: two events crabbing through the same parent
// into the same child must execute at the child in parent order.
func TestCrabPreservesOrdering(t *testing.T) {
	s := schema.New()
	parent := s.MustDeclareClass("Parent", func() any { return &itemState{} })
	s.MustDeclareClass("Child", func() any { return &itemState{} }).
		MustDeclareMethod("append", func(call schema.Call, args []any) (any, error) {
			st := call.State().(*itemState)
			st.record(uint64(args[0].(int)))
			time.Sleep(time.Millisecond)
			return nil, nil
		})
	parent.MustDeclareMethod("via", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*itemState)
		st.Gold++ // order stamp taken under the parent's lock
		return st.Gold, call.Crab(args[0].(ownership.ID), "append", args[1])
	}, schema.MayCall("Child", "append"))
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	p, _ := rt.CreateContext("Parent")
	c, _ := rt.CreateContext("Child", p)

	const n = 24
	results := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := rt.Submit(p, "via", c, i)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.(int)
		}(i)
	}
	wg.Wait()
	// The child's append log must follow the parent's stamp order: event
	// with stamp k wrote position k-1.
	cc, _ := rt.Context(c)
	log := cc.State().(*itemState).accessLog()
	if len(log) != n {
		t.Fatalf("log len = %d; want %d", len(log), n)
	}
	stampOf := make(map[int]int, n) // arg i → stamp
	for i, stamp := range results {
		stampOf[i] = stamp
	}
	prev := 0
	for _, arg := range log {
		stamp := stampOf[int(arg)]
		if stamp <= prev {
			t.Fatalf("child order violates parent order: stamp %d after %d", stamp, prev)
		}
		prev = stamp
	}
}

// TestConservationOnRandomDAGs is a property test: random ownership DAGs,
// random crossing transfers between shared leaves — total gold is conserved
// and nothing deadlocks (watchdog timeout would fail the events).
func TestConservationOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := gameTestSchemaForQuick()
		cl := cluster.New(transport.NullNetwork{})
		cl.AddServer(cluster.M3Large)
		cl.AddServer(cluster.M3Large)
		rt, err := New(s, ownership.NewGraph(), cl, Config{AcquireTimeout: 20 * time.Second})
		if err != nil {
			return false
		}
		defer rt.Close()

		// Random shape: R rooms, each with P players; each room has I items
		// randomly owned by 1..3 of {room, players...}.
		room := make([]ownership.ID, 1+rng.Intn(3))
		var players []ownership.ID
		var items []ownership.ID
		itemOwners := make(map[ownership.ID][]ownership.ID)
		for r := range room {
			room[r], _ = rt.CreateContext("Room")
			var roomPlayers []ownership.ID
			for p := 0; p < 2+rng.Intn(2); p++ {
				pl, _ := rt.CreateContext("Player", room[r])
				roomPlayers = append(roomPlayers, pl)
				players = append(players, pl)
			}
			for i := 0; i < 2+rng.Intn(3); i++ {
				candidates := append([]ownership.ID{room[r]}, roomPlayers...)
				rng.Shuffle(len(candidates), func(a, b int) {
					candidates[a], candidates[b] = candidates[b], candidates[a]
				})
				owners := candidates[:1+rng.Intn(len(candidates))]
				it, err := rt.CreateContext("Item", owners...)
				if err != nil {
					return false
				}
				if _, err := rt.Submit(it, "add", 100); err != nil {
					return false
				}
				items = append(items, it)
				itemOwners[it] = owners
			}
		}

		// Crossing transfers: each worker picks an owner that owns ≥2 items
		// and moves gold between them in random order.
		var wg sync.WaitGroup
		fail := make(chan struct{}, 64)
		byOwner := make(map[ownership.ID][]ownership.ID)
		for it, owners := range itemOwners {
			for _, o := range owners {
				byOwner[o] = append(byOwner[o], it)
			}
		}
		var eligible []ownership.ID
		for o, its := range byOwner {
			isRoom := false
			for _, r := range room {
				if o == r {
					isRoom = true
				}
			}
			if !isRoom && len(its) >= 2 {
				eligible = append(eligible, o)
			}
		}
		if len(eligible) == 0 {
			return true // degenerate shape; nothing to test
		}
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 10; i++ {
					o := eligible[rng.Intn(len(eligible))]
					its := byOwner[o]
					a, b := its[rng.Intn(len(its))], its[rng.Intn(len(its))]
					if a == b {
						continue
					}
					if _, err := rt.Submit(o, "transfer", a, b, 1); err != nil {
						fail <- struct{}{}
						return
					}
				}
			}(seed + int64(w))
		}
		wg.Wait()
		select {
		case <-fail:
			return false
		default:
		}
		total := 0
		for _, it := range items {
			c, err := rt.Context(it)
			if err != nil {
				return false
			}
			total += c.State().(*itemState).Gold
		}
		return total == 100*len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// gameTestSchemaForQuick builds the transfer schema without a *testing.T.
func gameTestSchemaForQuick() *schema.Schema {
	s := schema.New()
	s.MustDeclareClass("Room", func() any { return &itemState{} })
	player := s.MustDeclareClass("Player", func() any { return &itemState{} })
	item := s.MustDeclareClass("Item", func() any { return &itemState{} })
	item.MustDeclareMethod("add", func(call schema.Call, args []any) (any, error) {
		st, _ := call.State().(*itemState)
		st.Gold += args[0].(int)
		return st.Gold, nil
	})
	player.MustDeclareMethod("transfer", func(call schema.Call, args []any) (any, error) {
		if _, err := call.Sync(args[0].(ownership.ID), "add", -args[2].(int)); err != nil {
			return nil, err
		}
		return call.Sync(args[1].(ownership.ID), "add", args[2].(int))
	}, schema.MayCall("Item", "add"))
	if err := s.Freeze(); err != nil {
		panic(err)
	}
	return s
}
