package core

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/ownership"
)

// TestRehostBatchMovesGroupAndCounts checks the bulk runtime remap: one
// directory update for the whole group plus correct hosted-counter
// accounting, with members already on the destination counted as no-ops.
func TestRehostBatchMovesGroupAndCounts(t *testing.T) {
	rt := newTestRuntime(t, 2)
	servers := rt.Cluster().Servers()
	s1, s2 := servers[0], servers[1]

	room, err := rt.CreateContextOn(s1.ID(), "Room")
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := rt.CreateContextOn(s1.ID(), "Item", room)
	i2, _ := rt.CreateContextOn(s1.ID(), "Item", room)
	already, _ := rt.CreateContextOn(s2.ID(), "Item", room)

	if got := s1.Hosted(); got != 3 {
		t.Fatalf("s1 hosted = %d; want 3", got)
	}
	group := []ownership.ID{room, i1, i2, already}
	if err := rt.RehostBatch(group, s2.ID()); err != nil {
		t.Fatal(err)
	}
	for _, id := range group {
		if srv, _ := rt.Directory().Locate(id); srv != s2.ID() {
			t.Fatalf("%v on %v; want %v", id, srv, s2.ID())
		}
	}
	if got := s1.Hosted(); got != 0 {
		t.Fatalf("s1 hosted = %d; want 0 after batch", got)
	}
	if got := s2.Hosted(); got != 4 {
		t.Fatalf("s2 hosted = %d; want 4 after batch (no double count for %v)", got, already)
	}

	if err := rt.RehostBatch([]ownership.ID{room, ownership.ID(9999)}, s1.ID()); err == nil {
		t.Fatal("batch with unknown member must fail")
	}
	if srv, _ := rt.Directory().Locate(room); srv != s2.ID() {
		t.Fatal("failed batch must not move members")
	}
}

// TestLockGroupForMigrationStopsWholeGroup checks the compound stop window:
// while held, events on every member queue; on release they all resume.
func TestLockGroupForMigrationStopsWholeGroup(t *testing.T) {
	rt := newTestRuntime(t, 1)
	srv := rt.Cluster().Servers()[0].ID()
	room, _ := rt.CreateContextOn(srv, "Room")
	i1, _ := rt.CreateContextOn(srv, "Item", room)
	i2, _ := rt.CreateContextOn(srv, "Item", room)

	release, err := rt.LockGroupForMigration([]ownership.ID{room, i1, i2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for _, id := range []ownership.ID{i1, i2} {
		go func(id ownership.ID) {
			_, err := rt.Submit(id, "add", 1)
			done <- err
		}(id)
	}
	select {
	case <-done:
		t.Fatal("event ran inside the group stop window")
	case <-time.After(30 * time.Millisecond):
	}
	release()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("post-release event: %v", err)
		}
	}
	release() // idempotent
}

// TestLockGroupForMigrationTimeoutReleasesAll checks preemption: when a
// member cannot be acquired in time, the whole attempt unwinds and nothing
// stays held.
func TestLockGroupForMigrationTimeoutReleasesAll(t *testing.T) {
	rt := newTestRuntime(t, 1)
	srv := rt.Cluster().Servers()[0].ID()
	room, _ := rt.CreateContextOn(srv, "Room")
	item, _ := rt.CreateContextOn(srv, "Item", room)

	// An outstanding hold on the item makes the group stop time out.
	hold, err := rt.LockForMigration(item)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.LockGroupForMigration([]ownership.ID{room, item}, 20*time.Millisecond)
	if !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("err = %v; want ErrAcquireTimeout", err)
	}
	// The root must have been released by the unwind: an event runs now.
	evDone := make(chan error, 1)
	go func() {
		_, err := rt.Submit(room, "noop")
		evDone <- err
	}()
	select {
	case err := <-evDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("root still held after failed group stop")
	}
	hold()
	// With the straggler gone, the group stop succeeds.
	release, err := rt.LockGroupForMigration([]ownership.ID{room, item}, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	release()
}
