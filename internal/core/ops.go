package core

import (
	"errors"

	"aeon/internal/ops"
)

// queued reports the events currently sitting on executor queues across
// every server pool (a point-in-time gauge; pools are read without locks,
// exactly as precise as channel lengths can be).
func (e *executor) queued() int {
	n := 0
	e.pools.Range(func(_, v any) bool {
		n += len(v.(*serverPool).queue)
		return true
	})
	return n
}

var errRuntimeClosed = errors.New("runtime closed")

// RegisterOps registers the runtime's hot-path metrics on an ops registry:
// the striped end-to-end latency histogram (merged on read), completion and
// error counters, and an executor queue-depth gauge. Call once per process
// after the runtime is built; registration adds nothing to the hot path.
func (r *Runtime) RegisterOps(reg *ops.Registry) {
	reg.Histogram("aeon_event_latency_seconds",
		"End-to-end latency of locally executed events.", nil, &r.Latency)
	reg.Counter("aeon_events_completed_total",
		"Events completed by this runtime.", nil, r.Completed.Value)
	reg.Counter("aeon_subevent_errors_total",
		"Asynchronous sub-events that failed with no caller to report to.", nil, r.SubEventErrors.Value)
	reg.Counter("aeon_backpressure_total",
		"Asynchronous submissions rejected because their server's executor queue was full.", nil, r.Backpressure.Value)
	reg.Gauge("aeon_exec_queue_depth",
		"Events waiting on executor queues across all server pools.", nil,
		func() float64 { return float64(r.exec.queued()) })
	reg.Gauge("aeon_servers",
		"Servers in this runtime's cluster view.", nil,
		func() float64 { return float64(len(r.Cluster().Servers())) })
	reg.Readiness("runtime", func() error {
		if r.closed.Load() {
			return errRuntimeClosed
		}
		return nil
	})
}
