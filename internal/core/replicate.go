package core

import (
	"errors"
	"fmt"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// Replicator sequences structural ownership-network mutations through a
// fleet-wide log so every node of a multi-process deployment applies them in
// the same order (and therefore assigns the same context IDs). The runtime
// calls it on its mutation entry points when one is installed
// (SetReplicator); the replication plane calls back into the Apply* helpers
// below, which perform the local side effects without re-entering the
// replicator. Event submission never touches the replicator — the hot path
// stays log- and mesh-free.
type Replicator interface {
	// CreateContext appends a context-creation mutation and returns the ID
	// the log sequence assigned once the local replica has applied it.
	CreateContext(class string, srv cluster.ServerID, owners []ownership.ID) (ownership.ID, error)
	// AddEdge appends a direct-ownership edge mutation.
	AddEdge(parent, child ownership.ID) error
	// DestroyContext appends a detach-and-remove mutation.
	DestroyContext(id ownership.ID) error
	// CatchUp applies every log record the local replica has not seen. The
	// runtime calls it before failing an event with ErrUnknownContext: the
	// target may have been created on another node an instant ago.
	CatchUp() error
}

// SetReplicator installs the fleet-wide mutation log on the runtime's
// structural mutation paths (CreateContext/CreateContextOn, Call.NewContext,
// Call.AddOwner, DestroyContext). Call once during node startup before
// events are submitted, like SetRemote; nil restores process-local
// mutations.
func (r *Runtime) SetReplicator(rep Replicator) { r.repl = rep }

// catchUpOnUnknown gives the replica one chance to catch up with the
// mutation log when a lookup missed: a context created on another node is
// locally unknown only until the log applies. It reports whether the caller
// should retry the lookup.
func (r *Runtime) catchUpOnUnknown(err error) bool {
	if r.repl == nil || !errors.Is(err, ErrUnknownContext) {
		return false
	}
	return r.repl.CatchUp() == nil
}

// AddOwnerEdge records a direct-ownership edge, through the replication log
// when one is installed.
func (r *Runtime) AddOwnerEdge(parent, child ownership.ID) error {
	if r.repl != nil {
		return r.repl.AddEdge(parent, child)
	}
	return r.graph.AddEdge(parent, child)
}

// ApplyCreateContext performs the local side effects of a context creation:
// the graph mutation (which assigns the ID), registry materialization,
// directory placement, and hosted accounting. In replicated deployments it
// runs on every node, in log-sequence order, which is what makes the
// assigned IDs agree across the fleet; single-process deployments reach it
// directly from CreateContextOn. It never consults the replicator.
func (r *Runtime) ApplyCreateContext(class string, srv cluster.ServerID, owners ...ownership.ID) (ownership.ID, error) {
	cls := r.schema.Class(class)
	if cls == nil {
		return ownership.None, fmt.Errorf("class %q: %w", class, schema.ErrUnknownClass)
	}
	server, ok := r.cluster.Server(srv)
	if !ok {
		return ownership.None, fmt.Errorf("create %q: %w", class, cluster.ErrNoSuchServer)
	}
	id, err := r.graph.AddContext(class, owners...)
	if err != nil {
		return ownership.None, fmt.Errorf("create %q: %w", class, err)
	}
	c := &Context{id: id, class: cls, lock: newEventLock(), state: cls.NewState()}
	r.reg.put(id, c)
	r.dir.Place(id, srv)
	server.AddHosted(1)
	return id, nil
}

// ApplyDestroyContext performs the local side effects of destroying a leaf
// context: detach from the graph, directory and hosted-count cleanup,
// registry removal. Replication applies call it on every node; it never
// consults the replicator.
func (r *Runtime) ApplyDestroyContext(id ownership.ID) error {
	if err := r.graph.DetachContext(id); err != nil {
		return err
	}
	r.forgetContext(id)
	return nil
}

// forgetContext drops a removed context's placement, hosted accounting, and
// registry entry.
func (r *Runtime) forgetContext(id ownership.ID) {
	if srv, ok := r.dir.Locate(id); ok {
		if server, sok := r.cluster.Server(srv); sok {
			server.AddHosted(-1)
		}
	}
	r.dir.Forget(id)
	r.reg.delete(id)
}
