package core

import (
	"fmt"
	"time"

	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// callEnv implements schema.Call: the environment a method body executes in.
type callEnv struct {
	rt     *Runtime
	ev     *event
	ctx    *Context
	method *schema.Method
}

var _ schema.Call = (*callEnv)(nil)

// Self implements schema.Call.
func (c *callEnv) Self() ownership.ID { return c.ctx.id }

// Class implements schema.Call.
func (c *callEnv) Class() string { return c.ctx.class.Name() }

// State implements schema.Call.
func (c *callEnv) State() any { return c.ctx.State() }

// EventID implements schema.Call.
func (c *callEnv) EventID() uint64 { return c.ev.id }

// ReadOnly implements schema.Call.
func (c *callEnv) ReadOnly() bool { return c.ev.mode == RO }

// prepareCall validates and activates a child call, returning the callee
// context and method. It charges the cross-server hop for the EXEC message.
func (c *callEnv) prepareCall(child ownership.ID, method string) (*Context, *schema.Method, error) {
	if c.ev.crabbedCtx(c.ctx.id) {
		return nil, nil, fmt.Errorf("call %s from %v: %w", method, c.ctx.id, ErrCrabbed)
	}
	cc, err := c.rt.Context(child)
	if err != nil {
		return nil, nil, err
	}
	// § 3: access to a context is only granted to the contexts that
	// directly own it.
	if !c.rt.graph.OwnsDirectly(c.ctx.id, child) {
		return nil, nil, fmt.Errorf("%v → %v: %w", c.ctx.id, child, ErrNotOwned)
	}
	// Dynamic enforcement of the statically declared may-access sets.
	if !c.rt.schema.MayAccess(c.ctx.class.Name(), c.method.Name, cc.class.Name()) {
		return nil, nil, fmt.Errorf("%s.%s → %s: %w",
			c.ctx.class.Name(), c.method.Name, cc.class.Name(), ErrAccessDenied)
	}
	m := cc.class.Method(method)
	if m == nil {
		return nil, nil, fmt.Errorf("%s.%s: %w", cc.class.Name(), method, ErrUnknownMethod)
	}
	// EXEC message from the caller's host to the callee's host.
	if from, ok := c.rt.dir.Locate(c.ctx.id); ok {
		if _, err := c.rt.routeHop(from, child, true); err != nil {
			return nil, nil, err
		}
	}
	if err := c.rt.acquireCtx(c.ev, cc); err != nil {
		return nil, nil, err
	}
	return cc, m, nil
}

// Sync implements schema.Call.
func (c *callEnv) Sync(child ownership.ID, method string, args ...any) (any, error) {
	cc, m, err := c.prepareCall(child, method)
	if err != nil {
		return nil, err
	}
	return c.rt.invoke(c.ev, cc, m, args)
}

// asyncResult implements schema.AsyncResult.
type asyncResult struct {
	done chan struct{}
	res  any
	err  error
}

// Wait implements schema.AsyncResult.
func (a *asyncResult) Wait() (any, error) {
	<-a.done
	return a.res, a.err
}

// Async implements schema.Call. Activation happens synchronously in queue
// order (so two async calls to the same child from different branches keep
// the event's ordering guarantees); only the execution is concurrent.
func (c *callEnv) Async(child ownership.ID, method string, args ...any) schema.AsyncResult {
	a := &asyncResult{done: make(chan struct{})}
	cc, m, err := c.prepareCall(child, method)
	if err != nil {
		a.err = err
		close(a.done)
		return a
	}
	c.ev.asyncWG.Add(1)
	go func() {
		defer c.ev.asyncWG.Done()
		defer close(a.done)
		a.res, a.err = c.rt.invoke(c.ev, cc, m, args)
	}()
	return a
}

// Crab implements schema.Call: asynchronous tail call into a child followed
// by early release of the current context when its handler returns.
//
// The child's activation-queue position is taken synchronously — while the
// current context is still held, so the ordering the current context
// established is preserved at the child — but admission is awaited in the
// asynchronous tail, keeping the EXEC hop and any queue wait out of the
// current context's hold time (§ 6.1.2: the Warehouse is released while the
// District part of the transaction is still being delivered).
func (c *callEnv) Crab(child ownership.ID, method string, args ...any) error {
	if c.ev.crabbedCtx(c.ctx.id) {
		return fmt.Errorf("call %s from %v: %w", method, c.ctx.id, ErrCrabbed)
	}
	cc, err := c.rt.Context(child)
	if err != nil {
		return err
	}
	if !c.rt.graph.OwnsDirectly(c.ctx.id, child) {
		return fmt.Errorf("%v → %v: %w", c.ctx.id, child, ErrNotOwned)
	}
	if !c.rt.schema.MayAccess(c.ctx.class.Name(), c.method.Name, cc.class.Name()) {
		return fmt.Errorf("%s.%s → %s: %w",
			c.ctx.class.Name(), c.method.Name, cc.class.Name(), ErrAccessDenied)
	}
	m := cc.class.Method(method)
	if m == nil {
		return fmt.Errorf("%s.%s: %w", cc.class.Name(), method, ErrUnknownMethod)
	}
	// Reserve the child's queue slot now, under the current hold.
	w, admitted := cc.lock.enqueue(c.ev.id, c.ev.mode)
	if (w != nil || admitted) && !c.ev.recordHold(cc) {
		// A concurrent same-event branch is mid-acquisition on this child;
		// crabbing into it would race admission tracking. This pattern is
		// unsupported — crab targets must be untouched children.
		cc.lock.release(c.ev.id)
		return fmt.Errorf("crab %v: concurrent same-event acquisition: %w", child, ErrCrabbed)
	}
	if !c.ev.markCrab(c.ctx.id) {
		return fmt.Errorf("%v: %w", c.ctx.id, ErrCrabbed)
	}
	from, fromOK := c.rt.dir.Locate(c.ctx.id)
	c.ev.asyncWG.Add(1)
	go func() {
		defer c.ev.asyncWG.Done()
		// EXEC hop travels while the crabbed parent is already free.
		if fromOK {
			if _, err := c.rt.routeHop(from, child, true); err != nil {
				c.rt.SubEventErrors.Inc()
				return
			}
		}
		if w != nil && !cc.lock.waitAdmitted(w) {
			c.rt.SubEventErrors.Inc()
			return
		}
		if _, err := c.rt.invoke(c.ev, cc, m, args); err != nil {
			c.rt.SubEventErrors.Inc()
		}
	}()
	return nil
}

// Dispatch implements schema.Call.
func (c *callEnv) Dispatch(target ownership.ID, method string, args ...any) {
	c.ev.addSub(target, method, args)
}

// NewContext implements schema.Call. Owners must be held by the enclosing
// event: creating the edge mutates their ownership structure.
func (c *callEnv) NewContext(class string, owners ...ownership.ID) (ownership.ID, error) {
	for _, o := range owners {
		if !c.ev.holds(o) {
			return ownership.None, fmt.Errorf("owner %v: %w", o, ErrOwnerNotHeld)
		}
	}
	id, err := c.rt.CreateContext(class, owners...)
	if err != nil {
		return ownership.None, err
	}
	// The creating event implicitly owns the fresh context exclusively: no
	// other event can reach it before our edges are visible and we
	// terminate. Record the hold so calls into it work immediately.
	cc, err := c.rt.Context(id)
	if err != nil {
		return ownership.None, err
	}
	if err := c.rt.acquireCtx(c.ev, cc); err != nil {
		return ownership.None, err
	}
	return id, nil
}

// AddOwner implements schema.Call.
func (c *callEnv) AddOwner(parent, child ownership.ID) error {
	if !c.ev.holds(parent) {
		return fmt.Errorf("parent %v: %w", parent, ErrOwnerNotHeld)
	}
	if !c.ev.holds(child) {
		return fmt.Errorf("child %v: %w", child, ErrOwnerNotHeld)
	}
	return c.rt.AddOwnerEdge(parent, child)
}

// Children implements schema.Call.
func (c *callEnv) Children(class string) ([]ownership.ID, error) {
	// One snapshot for the listing and the class filter, so a concurrent
	// mutation can never yield a child whose class lookup then misses.
	view := c.rt.graph.Snapshot()
	children, err := view.Children(c.ctx.id)
	if err != nil {
		return nil, err
	}
	if class == "" {
		return children, nil
	}
	out := children[:0]
	for _, ch := range children {
		if cls, err := view.Class(ch); err == nil && cls == class {
			out = append(out, ch)
		}
	}
	return out, nil
}

// Work implements schema.Call.
func (c *callEnv) Work(d time.Duration) {
	if srv, ok := c.rt.dir.Locate(c.ctx.id); ok {
		if server, sok := c.rt.cluster.Server(srv); sok {
			server.Work(d)
		}
	}
}
