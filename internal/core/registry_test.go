package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"aeon/internal/ownership"
)

func TestRegistryPutGetDelete(t *testing.T) {
	r := newRegistry()
	if _, ok := r.get(1); ok {
		t.Fatal("empty registry returned a context")
	}
	c := &Context{id: 1, lock: newEventLock()}
	r.put(1, c)
	got, ok := r.get(1)
	if !ok || got != c {
		t.Fatalf("get(1) = %v, %v", got, ok)
	}
	if n := r.len(); n != 1 {
		t.Fatalf("len = %d", n)
	}
	r.delete(1)
	if _, ok := r.get(1); ok {
		t.Fatal("deleted context still present")
	}
	if n := r.len(); n != 0 {
		t.Fatalf("len after delete = %d", n)
	}
}

// TestRegistryGetOrPutSingleConstruction races many goroutines on getOrPut
// for the same ID and verifies the constructor runs exactly once and every
// caller observes the same context.
func TestRegistryGetOrPutSingleConstruction(t *testing.T) {
	r := newRegistry()
	const goroutines = 16
	var built atomic.Int32
	results := make([]*Context, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, _ := r.getOrPut(42, func() *Context {
				built.Add(1)
				return &Context{id: 42, lock: newEventLock()}
			})
			results[g] = c
		}(g)
	}
	wg.Wait()
	if built.Load() != 1 {
		t.Fatalf("constructor ran %d times; want 1", built.Load())
	}
	for g := 1; g < goroutines; g++ {
		if results[g] != results[0] {
			t.Fatalf("goroutine %d saw a different context", g)
		}
	}
}

// TestShardForDistribution checks that sequential context IDs — the
// allocator's actual pattern — spread evenly across shards rather than
// clustering.
func TestShardForDistribution(t *testing.T) {
	const ids = 10000
	var counts [shardCount]int
	for i := 1; i <= ids; i++ {
		s := shardFor(ownership.ID(i))
		if s >= shardCount {
			t.Fatalf("shardFor(%d) = %d out of range", i, s)
		}
		counts[s]++
	}
	mean := ids / shardCount
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d empty after %d sequential IDs", s, ids)
		}
		if n > 2*mean || n < mean/2 {
			t.Fatalf("shard %d holds %d of %d ids (mean %d): poor mixing", s, n, ids, mean)
		}
	}
}

func TestRegistryLenAcrossShards(t *testing.T) {
	r := newRegistry()
	const n = 500
	for i := 1; i <= n; i++ {
		r.put(ownership.ID(i), &Context{id: ownership.ID(i), lock: newEventLock()})
	}
	if got := r.len(); got != n {
		t.Fatalf("len = %d; want %d", got, n)
	}
}
