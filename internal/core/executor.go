package core

import (
	"sync"

	"aeon/internal/cluster"
)

// executor runs asynchronous work (SubmitAsync events and dispatched
// sub-events) on bounded per-server worker pools instead of one goroutine
// per event. Each cluster.ServerID gets its own submission queue and worker
// set, created lazily on first use, so asynchronous load lands on the pool
// of the server hosting the target context and saturation on one server
// never steals scheduler capacity from the others.
//
// When a server's queue is full, trySubmit fails with ErrBackpressure; the
// runtime surfaces that on the Future (SubmitAsync) or falls back to running
// the sub-event inline so dispatched work is never dropped.
type executor struct {
	workers int
	depth   int

	pools  sync.Map // cluster.ServerID → *serverPool; read-mostly after warmup
	stop   chan struct{}
	stopMu sync.Mutex
	wg     sync.WaitGroup
}

type serverPool struct {
	queue chan func()
}

func newExecutor(workersPerServer, queueDepth int) *executor {
	if workersPerServer <= 0 {
		workersPerServer = 8
	}
	if queueDepth <= 0 {
		queueDepth = 1024
	}
	return &executor{
		workers: workersPerServer,
		depth:   queueDepth,
		stop:    make(chan struct{}),
	}
}

// pool returns the submission queue for a server, creating its workers on
// first use. Pools are never torn down individually: a removed server's pool
// just idles, and the same ServerID re-added reuses it.
func (e *executor) pool(srv cluster.ServerID) *serverPool {
	if p, ok := e.pools.Load(srv); ok {
		return p.(*serverPool)
	}
	p := &serverPool{queue: make(chan func(), e.depth)}
	if actual, loaded := e.pools.LoadOrStore(srv, p); loaded {
		return actual.(*serverPool)
	}
	e.stopMu.Lock()
	defer e.stopMu.Unlock()
	select {
	case <-e.stop:
		// Executor already stopped; leave the pool workerless. Submissions
		// will fail cleanly with ErrBackpressure once the queue fills.
		return p
	default:
	}
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go e.worker(p)
	}
	return p
}

func (e *executor) worker(p *serverPool) {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			// Shutdown happens after the runtime drained its in-flight work
			// (subWG), so the queue is normally empty here — but a submission
			// racing Close can still slip a task in between the stop check
			// and the enqueue. Drain instead of abandoning it: the task runs,
			// observes the closed runtime, and completes its Future with
			// ErrClosed rather than leaving a waiter blocked forever.
			drain(p)
			return
		case task := <-p.queue:
			task()
		}
	}
}

// drain runs every task currently queued on a pool, without blocking.
func drain(p *serverPool) {
	for {
		select {
		case task := <-p.queue:
			task()
		default:
			return
		}
	}
}

// trySubmit enqueues a task for the given server without blocking. It
// returns ErrBackpressure when the server's queue is full and ErrClosed
// after shutdown.
func (e *executor) trySubmit(srv cluster.ServerID, task func()) error {
	select {
	case <-e.stop:
		return ErrClosed
	default:
	}
	p := e.pool(srv)
	select {
	case p.queue <- task:
		// Re-check after the enqueue: shutdown may have closed stop and run
		// its final sweep between our check above and the send, leaving the
		// task on a pool whose workers are gone. If so, drain it ourselves
		// (it will observe the closed runtime and fail with ErrClosed).
		select {
		case <-e.stop:
			drain(p)
		default:
		}
		return nil
	default:
		return ErrBackpressure
	}
}

// shutdown stops all workers and waits for them to exit. The caller must
// have drained outstanding tasks first.
func (e *executor) shutdown() {
	e.stopMu.Lock()
	select {
	case <-e.stop:
		e.stopMu.Unlock()
		return
	default:
	}
	close(e.stop)
	e.stopMu.Unlock()
	e.wg.Wait()
	// Final sweep: a submission racing shutdown can enqueue onto a pool
	// whose workers already exited (or one created workerless after stop).
	// Run anything left so no Future is stranded; tasks observe the closed
	// runtime and fail with ErrClosed. (trySubmit also re-checks stop after
	// its enqueue and drains, covering a send that lands after this sweep.)
	e.pools.Range(func(_, v any) bool {
		drain(v.(*serverPool))
		return true
	})
}
