package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// lockModel is a trivially correct reference implementation of the fair
// FIFO read/write activation queue: a queue of (event, mode) plus a holder
// set, with the Algorithm 2 admission rule applied wholesale.
type lockModel struct {
	queue   []modelWaiter
	holders map[uint64]AccessMode
}

type modelWaiter struct {
	id   uint64
	mode AccessMode
}

func newLockModel() *lockModel {
	return &lockModel{holders: make(map[uint64]AccessMode)}
}

func (m *lockModel) hasEX() bool {
	for _, md := range m.holders {
		if md == EX {
			return true
		}
	}
	return false
}

func (m *lockModel) enqueue(id uint64, mode AccessMode) {
	if _, ok := m.holders[id]; ok {
		return
	}
	m.queue = append(m.queue, modelWaiter{id: id, mode: mode})
	m.pump()
}

func (m *lockModel) release(id uint64) {
	if _, ok := m.holders[id]; ok {
		delete(m.holders, id)
	} else {
		for i, w := range m.queue {
			if w.id == id {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
	}
	m.pump()
}

func (m *lockModel) pump() {
	for len(m.queue) > 0 {
		head := m.queue[0]
		if head.mode == RO && !m.hasEX() {
			// admitted
		} else if len(m.holders) == 0 {
			// admitted
		} else {
			return
		}
		m.holders[head.id] = head.mode
		m.queue = m.queue[1:]
	}
}

func (m *lockModel) holderSet() map[uint64]AccessMode {
	out := make(map[uint64]AccessMode, len(m.holders))
	for k, v := range m.holders {
		out[k] = v
	}
	return out
}

// implHolderSet snapshots the real lock's holders.
func implHolderSet(l *eventLock) map[uint64]AccessMode {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[uint64]AccessMode, len(l.holders))
	for k, v := range l.holders {
		out[k] = v
	}
	return out
}

// TestLockMatchesModel drives the real eventLock and the reference model
// with identical random operation sequences (single-threaded, using the
// non-blocking enqueue) and compares holder sets after every step.
func TestLockMatchesModel(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		impl := newEventLock()
		model := newLockModel()
		live := make(map[uint64]bool)
		nextID := uint64(1)

		for s := 0; s < int(steps%120)+20; s++ {
			if len(live) == 0 || rng.Intn(100) < 55 {
				// enqueue a new event
				id := nextID
				nextID++
				mode := EX
				if rng.Intn(100) < 40 {
					mode = RO
				}
				live[id] = true
				impl.enqueue(id, mode)
				model.enqueue(id, mode)
			} else {
				// release a random live event (holder or queued)
				var ids []uint64
				for id := range live {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				delete(live, id)
				impl.release(id)
				model.release(id)
			}
			got := implHolderSet(impl)
			want := model.holderSet()
			if len(got) != len(want) {
				return false
			}
			for id, mode := range want {
				if got[id] != mode {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLockModelInvariants double-checks the admission invariants on the
// real lock under the same random schedules: never EX+anything, never an
// admitted waiter overtaking a blocked earlier one of conflicting mode.
func TestLockInvariantsRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		impl := newEventLock()
		live := map[uint64]AccessMode{}
		nextID := uint64(1)
		for s := 0; s < 150; s++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				id := nextID
				nextID++
				mode := EX
				if rng.Intn(3) == 0 {
					mode = RO
				}
				live[id] = mode
				impl.enqueue(id, mode)
			} else {
				var ids []uint64
				for id := range live {
					ids = append(ids, id)
				}
				id := ids[rng.Intn(len(ids))]
				delete(live, id)
				impl.release(id)
			}
			holders := implHolderSet(impl)
			ex := 0
			for _, mode := range holders {
				if mode == EX {
					ex++
				}
			}
			if ex > 1 || (ex == 1 && len(holders) > 1) {
				return false // EX must be exclusive
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
