package core

import (
	"sync/atomic"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// These tests pin down the executor-pool semantics around server removal
// (the ROADMAP open item): per-server queues are keyed by the target's host
// at submission time, queued work on a removed server's pool is NOT dropped
// — the orphaned pool keeps draining — and each event re-resolves its
// target's placement at execution time, so drained work re-routes to the
// context's current host. The test names document the chosen semantics.

func executorTestSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	gate := s.MustDeclareClass("Gate", func() any { return make(chan struct{}) })
	gate.MustDeclareMethod("block", func(call schema.Call, args []any) (any, error) {
		started := args[0].(chan struct{})
		close(started)
		<-call.State().(chan struct{})
		return nil, nil
	})
	cell := s.MustDeclareClass("Cell", func() any { return new(atomic.Int64) })
	cell.MustDeclareMethod("bump", func(call schema.Call, args []any) (any, error) {
		return call.State().(*atomic.Int64).Add(1), nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRemovedServerQueueDrainsAndReroutesAtExecution: work queued on a
// server's executor pool survives that server's removal. The pool keeps
// draining, and because routing re-resolves the directory at execution time,
// the drained events execute against the context's new host. Nothing is
// dropped and nothing reports backpressure.
func TestRemovedServerQueueDrainsAndReroutesAtExecution(t *testing.T) {
	s := executorTestSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	a := cl.AddServer(cluster.M3Large)
	b := cl.AddServer(cluster.M3Large)
	rt, err := New(s, ownership.NewGraph(), cl, Config{
		ChargeClientHops:     false,
		AcquireTimeout:       10 * time.Second,
		ExecWorkersPerServer: 1, // one worker per server: easy to occupy
		ExecQueueDepth:       64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	gate, err := rt.CreateContextOn(a.ID(), "Gate")
	if err != nil {
		t.Fatal(err)
	}
	cellID, err := rt.CreateContextOn(a.ID(), "Cell")
	if err != nil {
		t.Fatal(err)
	}

	// Occupy server A's only executor worker.
	started := make(chan struct{})
	blockFut := rt.SubmitAsync(gate, "block", started)
	<-started

	// Queue work for the cell behind the blocked worker: it lands on A's
	// pool because A hosts the cell at submission time.
	const queued = 16
	futs := make([]*Future, 0, queued)
	for i := 0; i < queued; i++ {
		futs = append(futs, rt.SubmitAsync(cellID, "bump"))
	}

	// Scale in: migrate both contexts to B, then remove A. The gate is
	// mid-event; its placement moves while the handler runs, exactly like a
	// migration racing slow events.
	if err := rt.Rehost(cellID, b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Rehost(gate, b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveServer(a.ID()); err != nil {
		t.Fatalf("RemoveServer(A) with drained hosting: %v", err)
	}
	if _, ok := cl.Server(a.ID()); ok {
		t.Fatal("server A still resolvable after removal")
	}

	// Release the worker; the orphaned pool must drain every queued event.
	gctx, err := rt.Context(gate)
	if err != nil {
		t.Fatal(err)
	}
	close(gctx.State().(chan struct{}))
	if _, err := blockFut.Wait(); err != nil {
		t.Fatalf("blocking event failed: %v", err)
	}
	for i, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatalf("queued event %d failed after server removal: %v", i, err)
		}
	}
	cctx, err := rt.Context(cellID)
	if err != nil {
		t.Fatal(err)
	}
	if got := cctx.State().(*atomic.Int64).Load(); got != queued {
		t.Fatalf("cell executed %d bumps; want %d (queued work was dropped)", got, queued)
	}
	if bp := rt.Backpressure.Value(); bp != 0 {
		t.Fatalf("Backpressure = %d; want 0", bp)
	}
}

// TestSubmitAfterServerRemovalUsesNewHostPool: once the directory maps a
// context to its new host, fresh asynchronous submissions enqueue on the new
// host's pool (the removed server's pool receives no new work) and execute
// normally.
func TestSubmitAfterServerRemovalUsesNewHostPool(t *testing.T) {
	s := executorTestSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	a := cl.AddServer(cluster.M3Large)
	b := cl.AddServer(cluster.M3Large)
	rt, err := New(s, ownership.NewGraph(), cl, Config{ChargeClientHops: false, AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cellID, err := rt.CreateContextOn(a.ID(), "Cell")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Rehost(cellID, b.ID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveServer(a.ID()); err != nil {
		t.Fatal(err)
	}

	if srv := rt.execServer(cellID); srv != b.ID() {
		t.Fatalf("execServer(cell) = %v after removal; want new host %v", srv, b.ID())
	}
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := rt.SubmitAsync(cellID, "bump").Wait(); err != nil {
			t.Fatalf("submit %d after removal: %v", i, err)
		}
	}
	cctx, err := rt.Context(cellID)
	if err != nil {
		t.Fatal(err)
	}
	if got := cctx.State().(*atomic.Int64).Load(); got != n {
		t.Fatalf("cell executed %d bumps; want %d", got, n)
	}
}
