package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockExclusiveBlocks(t *testing.T) {
	l := newEventLock()
	if first, err := l.acquire(1, EX, 0); err != nil || !first {
		t.Fatalf("first acquire: %v %v", first, err)
	}
	acquired := make(chan struct{})
	go func() {
		_, _ = l.acquire(2, EX, 0)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second EX acquire should block")
	case <-time.After(20 * time.Millisecond):
	}
	l.release(1)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("second EX acquire should proceed after release")
	}
}

func TestLockReentrant(t *testing.T) {
	l := newEventLock()
	first, _ := l.acquire(1, EX, 0)
	if !first {
		t.Fatal("want first=true")
	}
	again, _ := l.acquire(1, EX, 0)
	if again {
		t.Fatal("re-entrant acquire must report first=false")
	}
	if l.holderCount() != 1 {
		t.Fatalf("holders = %d", l.holderCount())
	}
}

func TestLockSharedReaders(t *testing.T) {
	l := newEventLock()
	for id := uint64(1); id <= 3; id++ {
		done := make(chan struct{})
		go func(id uint64) {
			_, _ = l.acquire(id, RO, 0)
			close(done)
		}(id)
		select {
		case <-done:
		case <-time.After(time.Second):
			t.Fatalf("reader %d blocked", id)
		}
	}
	if l.holderCount() != 3 {
		t.Fatalf("holders = %d; want 3", l.holderCount())
	}
}

func TestLockWriterWaitsForReaders(t *testing.T) {
	l := newEventLock()
	_, _ = l.acquire(1, RO, 0)
	_, _ = l.acquire(2, RO, 0)
	acquired := make(chan struct{})
	go func() {
		_, _ = l.acquire(3, EX, 0)
		close(acquired)
	}()
	time.Sleep(10 * time.Millisecond)
	l.release(1)
	select {
	case <-acquired:
		t.Fatal("writer should wait for all readers")
	case <-time.After(10 * time.Millisecond):
	}
	l.release(2)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("writer should proceed once readers drain")
	}
}

// TestLockFIFONoReaderBarging: a reader arriving after a waiting writer must
// not overtake it (starvation freedom).
func TestLockFIFONoReaderBarging(t *testing.T) {
	l := newEventLock()
	_, _ = l.acquire(1, RO, 0) // active reader

	writerIn := make(chan struct{})
	go func() {
		_, _ = l.acquire(2, EX, 0)
		close(writerIn)
	}()
	time.Sleep(10 * time.Millisecond) // writer is queued

	lateReaderIn := make(chan struct{})
	go func() {
		_, _ = l.acquire(3, RO, 0)
		close(lateReaderIn)
	}()
	select {
	case <-lateReaderIn:
		t.Fatal("late reader barged past waiting writer")
	case <-time.After(20 * time.Millisecond):
	}
	l.release(1)
	<-writerIn
	select {
	case <-lateReaderIn:
		t.Fatal("late reader admitted while writer holds")
	case <-time.After(10 * time.Millisecond):
	}
	l.release(2)
	select {
	case <-lateReaderIn:
	case <-time.After(time.Second):
		t.Fatal("late reader should follow writer")
	}
}

func TestLockFIFOOrderAmongWriters(t *testing.T) {
	l := newEventLock()
	_, _ = l.acquire(100, EX, 0)
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id := uint64(1); id <= 5; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			_, _ = l.acquire(id, EX, 0)
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			l.release(id)
		}(id)
		time.Sleep(5 * time.Millisecond) // establish arrival order
	}
	l.release(100)
	wg.Wait()
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("admission order = %v; want FIFO 1..5", order)
		}
	}
}

func TestLockAcquireTimeout(t *testing.T) {
	l := newEventLock()
	_, _ = l.acquire(1, EX, 0)
	start := time.Now()
	_, err := l.acquire(2, EX, 20*time.Millisecond)
	if !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("err = %v; want ErrAcquireTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned before timeout")
	}
	// The timed-out waiter must be gone: release should admit nobody else.
	if l.queueLen() != 0 {
		t.Fatalf("queue = %d; want 0 after timeout removal", l.queueLen())
	}
	l.release(1)
	// Lock is free again.
	if first, err := l.acquire(3, EX, 0); err != nil || !first {
		t.Fatalf("post-timeout acquire: %v %v", first, err)
	}
}

func TestLockReleaseUnheldIsNoop(t *testing.T) {
	l := newEventLock()
	l.release(42) // must not panic or corrupt
	if first, err := l.acquire(1, EX, 0); err != nil || !first {
		t.Fatalf("acquire after spurious release: %v %v", first, err)
	}
}

func TestLockConcurrentStress(t *testing.T) {
	l := newEventLock()
	var active atomic.Int32
	var roActive atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(id uint64, ro bool) {
			defer wg.Done()
			mode := EX
			if ro {
				mode = RO
			}
			_, _ = l.acquire(id, mode, 0)
			if ro {
				roActive.Add(1)
				if active.Load() > 0 {
					t.Error("reader admitted alongside writer")
				}
				roActive.Add(-1)
			} else {
				if active.Add(1) > 1 {
					t.Error("two writers active")
				}
				if roActive.Load() > 0 {
					t.Error("writer admitted alongside readers")
				}
				active.Add(-1)
			}
			l.release(id)
		}(uint64(i+1), i%3 == 0)
	}
	wg.Wait()
}
