package core

import (
	"sync"
	"time"
)

// AccessMode distinguishes readonly from exclusive activation (Algorithm 1,
// accessMode).
type AccessMode int

const (
	// RO activates a context in share mode: multiple readonly events may
	// hold the same context concurrently.
	RO AccessMode = iota + 1
	// EX activates a context exclusively.
	EX
)

// String renders the mode.
func (m AccessMode) String() string {
	if m == RO {
		return "RO"
	}
	return "EX"
}

// eventLock is one context's activation state: the paper's toActivateQueue
// (FIFO waiters) plus activatedSet (current holders). Admission follows
// Algorithm 2's dispatchEvent: the queue head is admitted if it is readonly
// and no exclusive holder is active, or if the activated set is empty;
// otherwise it waits. FIFO admission gives starvation freedom — a writer is
// never overtaken by later readers.
type eventLock struct {
	mu      sync.Mutex
	holders map[uint64]AccessMode
	exCount int
	queue   []*waiter
}

type waiter struct {
	eventID uint64
	mode    AccessMode
	ready   chan struct{}
	// cancelled is set (before ready is closed, under the lock's mutex, so
	// the channel close publishes it) when the waiter was removed from the
	// queue instead of admitted.
	cancelled bool
}

func newEventLock() *eventLock {
	return &eventLock{holders: make(map[uint64]AccessMode)}
}

// enqueue joins the activation queue without blocking. The queue position
// is taken synchronously, so ordering established by the caller (e.g. a
// crabbed parent still being held) is preserved even though admission is
// awaited later. Returns:
//
//	(nil, false) — the event already holds the context (re-entrant)
//	(nil, true)  — admitted synchronously (uncontended fast path; no
//	               waiter was allocated)
//	(w, false)   — queued; block on w via waitAdmitted
func (l *eventLock) enqueue(eventID uint64, mode AccessMode) (*waiter, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.holders[eventID]; ok {
		return nil, false
	}
	// Fast path: nobody queued ahead and the admission rule of pump() holds
	// right now — admit without allocating a waiter and its channel. This
	// is the common case for events on disjoint subtrees and keeps the
	// per-event hot path allocation-free here.
	if len(l.queue) == 0 && ((mode == RO && l.exCount == 0) || len(l.holders) == 0) {
		l.holders[eventID] = mode
		if mode == EX {
			l.exCount++
		}
		return nil, true
	}
	w := &waiter{eventID: eventID, mode: mode, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.pump()
	return w, false
}

// acquire blocks until the event holds the context in the given mode.
// It returns false if the event already held the context (re-entrant; no
// state change), and an error only if the optional timeout fires.
func (l *eventLock) acquire(eventID uint64, mode AccessMode, timeout time.Duration) (bool, error) {
	w, admitted := l.enqueue(eventID, mode)
	if w == nil {
		return admitted, nil
	}

	if timeout <= 0 {
		if !l.waitAdmitted(w) {
			return false, ErrAcquireTimeout
		}
		return true, nil
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w.ready:
		if w.cancelled {
			return false, ErrAcquireTimeout
		}
		return true, nil
	case <-timer.C:
		// Remove ourselves from the queue if still waiting; we may have
		// been admitted in the race, in which case we keep the lock.
		l.mu.Lock()
		for i, qw := range l.queue {
			if qw == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				l.mu.Unlock()
				return false, ErrAcquireTimeout
			}
		}
		l.mu.Unlock()
		if !l.waitAdmitted(w) {
			return false, ErrAcquireTimeout
		}
		return true, nil
	}
}

// release drops the event's hold (or its pending queue entry, if the event
// was enqueued but never admitted — e.g. an aborted crab) and admits queued
// waiters.
func (l *eventLock) release(eventID uint64) {
	l.mu.Lock()
	mode, ok := l.holders[eventID]
	if ok {
		delete(l.holders, eventID)
		if mode == EX {
			l.exCount--
		}
		l.pump()
	} else {
		for i, w := range l.queue {
			if w.eventID == eventID {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				w.cancelled = true
				close(w.ready)
				l.pump()
				break
			}
		}
	}
	l.mu.Unlock()
}

// waitAdmitted blocks until the waiter is admitted; it returns false when
// the waiter was cancelled by release instead.
func (l *eventLock) waitAdmitted(w *waiter) bool {
	<-w.ready
	return !w.cancelled
}

// pump admits queue heads per Algorithm 2; caller holds l.mu.
func (l *eventLock) pump() {
	for len(l.queue) > 0 {
		head := l.queue[0]
		switch {
		case head.mode == RO && l.exCount == 0:
			// Readonly joins other readonly holders.
		case len(l.holders) == 0:
			// Exclusive (or first) activation requires an empty set.
		default:
			return
		}
		l.holders[head.eventID] = head.mode
		if head.mode == EX {
			l.exCount++
		}
		l.queue = l.queue[1:]
		close(head.ready)
	}
}

// holderCount reports how many events currently hold the context.
func (l *eventLock) holderCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.holders)
}

// queueLen reports how many events are waiting for activation.
func (l *eventLock) queueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}
