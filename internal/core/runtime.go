package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/metrics"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// ClientNode is the logical network location of external clients; hops
// between clients and servers are charged against it.
const ClientNode = transport.NodeID(-1)

// Config tunes the runtime.
type Config struct {
	// MessageBytes approximates the payload size of protocol messages
	// (activation and execution requests) for network latency charging.
	MessageBytes int
	// ChargeClientHops charges the client→dominator request hop and the
	// target→client reply hop on every event (on by default in New).
	ChargeClientHops bool
	// AcquireTimeout, when positive, bounds context activation waits and
	// fails the event with ErrAcquireTimeout. The protocol is deadlock-free
	// for valid ownership networks; tests use this as a watchdog.
	AcquireTimeout time.Duration
	// StalenessWindow is how long after a migration routing to the moved
	// context still pays the stale-cache forwarding hop (§ 5.2).
	StalenessWindow time.Duration
	// ExecWorkersPerServer bounds how many asynchronous events (SubmitAsync
	// and dispatched sub-events) execute concurrently per server. Zero means
	// 8. Synchronous Submit runs on the caller's goroutine and is not
	// bounded here. Because the pool is bounded, application code running
	// inside an event handler must not block on a Future from SubmitAsync:
	// if every worker of a server blocks waiting on futures whose events
	// are queued behind them, the pool deadlocks. Handlers should use the
	// intra-event Async/Crab calls (unbounded, joined by the event) or
	// Dispatch sub-events instead.
	ExecWorkersPerServer int
	// ExecQueueDepth bounds each server's pending asynchronous submissions.
	// A full queue surfaces as ErrBackpressure on the Future (sub-events
	// instead run inline on the dispatching goroutine). Zero means 1024.
	ExecQueueDepth int
	// SharedOwnershipUpdateCost charges the creation of a *multi-owned*
	// context: sharing edges are part of the authoritative ownership
	// network the eManager keeps in cloud storage (§ 5.1), so creating a
	// shared context is a globally serialized update. Single-owner
	// creation is a local structural change and stays free. The TPC-C
	// benchmarks set this; it is the mechanism behind AEON's earlier
	// saturation versus AEON_SO in Figure 6a.
	SharedOwnershipUpdateCost time.Duration
}

// DefaultConfig returns the configuration used by the benchmark harness.
func DefaultConfig() Config {
	return Config{
		MessageBytes:     256,
		ChargeClientHops: true,
		StalenessWindow:  2 * time.Second,
	}
}

// Runtime executes AEON events over an ownership network on a cluster.
type Runtime struct {
	cfg     Config
	schema  *schema.Schema
	graph   *ownership.Graph
	cluster *cluster.Cluster
	dir     *Directory

	// reg is the striped context registry: per-event lookups and
	// registrations take only the shard the context hashes to, never a
	// process-global lock.
	reg *registry
	// exec runs asynchronous events and sub-events on bounded per-server
	// worker pools.
	exec *executor

	placeCursor atomic.Uint64

	// sharedCreateMu serializes multi-owned context creation when
	// SharedOwnershipUpdateCost is configured (the global ownership-network
	// update).
	sharedCreateMu sync.Mutex

	// Multi-process hooks (SetRemote): isLocal reports whether this process
	// embodies a server; forward delegates an event to the node hosting it.
	// nil isLocal means single-process mode — every server is local.
	isLocal func(cluster.ServerID) bool
	forward ForwardFunc

	// repl, when installed (SetReplicator), sequences structural mutations
	// through the fleet-wide log instead of applying them process-locally.
	repl Replicator

	eventSeq atomic.Uint64
	closed   atomic.Bool
	subWG    sync.WaitGroup

	// Latency records end-to-end event latency striped by event sequence
	// number (merged on read); Completed counts finished events. The
	// eManager's SLA policy reads RecentLatency.
	Latency   metrics.StripedHistogram
	Completed metrics.StripedCounter
	// SubEventErrors counts sub-events that failed (they have no client to
	// report to).
	SubEventErrors metrics.Counter
	// Backpressure counts asynchronous submissions that found their
	// server's executor queue full.
	Backpressure metrics.Counter
	ewma         metrics.StripedEWMA
}

// New creates a runtime over a frozen schema, an ownership graph, and a
// cluster. The graph may be pre-populated or built through CreateContext.
func New(s *schema.Schema, g *ownership.Graph, cl *cluster.Cluster, cfg Config) (*Runtime, error) {
	if !s.Frozen() {
		return nil, fmt.Errorf("core: schema must be frozen before use")
	}
	if cfg.MessageBytes == 0 {
		cfg.MessageBytes = 256
	}
	if cfg.StalenessWindow == 0 {
		cfg.StalenessWindow = 2 * time.Second
	}
	return &Runtime{
		cfg:     cfg,
		schema:  s,
		graph:   g,
		cluster: cl,
		dir:     NewDirectory(cfg.StalenessWindow),
		reg:     newRegistry(),
		exec:    newExecutor(cfg.ExecWorkersPerServer, cfg.ExecQueueDepth),
	}, nil
}

// ForwardFunc delegates an event to the process embodying the server that
// hosts its sequencing point (the node runtime sends a submit frame over the
// transport mesh and returns the remote result).
type ForwardFunc func(host cluster.ServerID, target ownership.ID, method string, args []any) (any, error)

// SetRemote installs the multi-process hooks: isLocal reports whether this
// process embodies a server, and forward delegates events whose dominator
// lives elsewhere. Call once during node startup, before events are
// submitted; nil isLocal restores single-process behavior. The runtime
// re-checks locality after admission (the dominator lock is held), so an
// event that raced a migration onto another node is released and forwarded
// instead of executing against state that has already moved away.
func (r *Runtime) SetRemote(isLocal func(cluster.ServerID) bool, forward ForwardFunc) {
	r.isLocal = isLocal
	r.forward = forward
}

// hostIsLocal reports whether this process embodies the given server.
func (r *Runtime) hostIsLocal(srv cluster.ServerID) bool {
	return r.isLocal == nil || r.isLocal(srv)
}

// Graph returns the ownership network.
func (r *Runtime) Graph() *ownership.Graph { return r.graph }

// Directory returns the context-placement directory.
func (r *Runtime) Directory() *Directory { return r.dir }

// Cluster returns the compute substrate.
func (r *Runtime) Cluster() *cluster.Cluster { return r.cluster }

// Schema returns the application schema.
func (r *Runtime) Schema() *schema.Schema { return r.schema }

// Close stops accepting events, waits for in-flight sub-events, then stops
// the per-server executors.
func (r *Runtime) Close() {
	r.closed.Store(true)
	r.subWG.Wait()
	r.exec.shutdown()
}

// CreateContext creates a context of the given class owned by owners and
// places it on the server hosting the first owner (the locality-aware
// placement the paper credits for AEON's low message overhead); ownerless
// contexts are placed round-robin.
func (r *Runtime) CreateContext(class string, owners ...ownership.ID) (ownership.ID, error) {
	srv, err := r.defaultPlacement(owners)
	if err != nil {
		return ownership.None, err
	}
	return r.CreateContextOn(srv, class, owners...)
}

// CreateContextOn creates a context on an explicit server. With a
// replicator installed the mutation is sequenced through the fleet-wide log
// (the log order, not this call's local order, assigns the ID); otherwise it
// applies process-locally.
func (r *Runtime) CreateContextOn(srv cluster.ServerID, class string, owners ...ownership.ID) (ownership.ID, error) {
	if r.schema.Class(class) == nil {
		return ownership.None, fmt.Errorf("class %q: %w", class, schema.ErrUnknownClass)
	}
	if _, ok := r.cluster.Server(srv); !ok {
		return ownership.None, fmt.Errorf("create %q: %w", class, cluster.ErrNoSuchServer)
	}
	if len(owners) > 1 && r.cfg.SharedOwnershipUpdateCost > 0 {
		// Publishing a sharing edge updates the authoritative ownership
		// network (eManager + cloud storage): globally serialized.
		r.sharedCreateMu.Lock()
		time.Sleep(r.cfg.SharedOwnershipUpdateCost)
		r.sharedCreateMu.Unlock()
	}
	if r.repl != nil {
		return r.repl.CreateContext(class, srv, owners)
	}
	return r.ApplyCreateContext(class, srv, owners...)
}

func (r *Runtime) defaultPlacement(owners []ownership.ID) (cluster.ServerID, error) {
	if len(owners) > 0 {
		if srv, ok := r.dir.Locate(owners[0]); ok {
			return srv, nil
		}
	}
	servers := r.cluster.Servers()
	if len(servers) == 0 {
		return 0, fmt.Errorf("core: cluster has no servers")
	}
	idx := int((r.placeCursor.Add(1) - 1) % uint64(len(servers)))
	return servers[idx].ID(), nil
}

// Context returns the runtime entry for a context, lazily materializing
// entries for virtual contexts the ownership graph created as sequencing
// points.
func (r *Runtime) Context(id ownership.ID) (*Context, error) {
	if c, ok := r.reg.get(id); ok {
		return c, nil
	}
	view := r.graph.Snapshot()
	class, err := view.Class(id)
	if err != nil || class != ownership.VirtualClass {
		return nil, fmt.Errorf("%v: %w", id, ErrUnknownContext)
	}
	// Materialize under the registry shard lock so racing callers observe
	// the virtual sequencer only once it is placed and counted.
	c, _ := r.reg.getOrPut(id, func() *Context {
		c := &Context{id: id, class: schema.VirtualContextClass(), lock: newEventLock()}
		// Place the virtual sequencer alongside its first child for locality.
		srv := cluster.ServerID(0)
		if children, err := view.Children(id); err == nil && len(children) > 0 {
			if s, ok := r.dir.Locate(children[0]); ok {
				srv = s
			}
		}
		if srv == 0 {
			if servers := r.cluster.Servers(); len(servers) > 0 {
				srv = servers[0].ID()
			}
		}
		r.dir.Place(id, srv)
		if server, ok := r.cluster.Server(srv); ok {
			server.AddHosted(1)
		}
		return c
	})
	return c, nil
}

// DestroyContext removes a leaf context with no remaining edges from the
// runtime (e.g. consumed TPC-C NewOrder markers). The caller must ensure no
// event holds it. With a replicator installed the removal is sequenced
// through the fleet-wide log like every other structural mutation.
func (r *Runtime) DestroyContext(id ownership.ID) error {
	if r.repl != nil {
		return r.repl.DestroyContext(id)
	}
	return r.ApplyDestroyContext(id)
}

// Submit runs an event to completion and returns its result (the paper's
// `event x.m(args)` decorated call, § 3).
func (r *Runtime) Submit(target ownership.ID, method string, args ...any) (any, error) {
	return r.run(target, method, args)
}

// SubmitAsync runs an event on the executor pool of the server hosting the
// target context and returns a Future. When that server's submission queue
// is full the Future completes immediately with ErrBackpressure.
//
// Do not call Future.Wait from inside an event handler: workers are a
// bounded pool (Config.ExecWorkersPerServer), and a handler blocking on an
// event queued behind it can exhaust the pool and deadlock. Handlers should
// use Call.Async/Call.Crab for intra-event concurrency or Call.Dispatch for
// follow-on events.
func (r *Runtime) SubmitAsync(target ownership.ID, method string, args ...any) *Future {
	f := newFuture()
	r.subWG.Add(1)
	err := r.exec.trySubmit(r.execServer(target), func() {
		defer r.subWG.Done()
		f.complete(r.run(target, method, args))
	})
	if err != nil {
		r.subWG.Done()
		if err == ErrBackpressure {
			r.Backpressure.Inc()
		}
		f.complete(nil, err)
	}
	return f
}

// execServer picks the executor pool for an asynchronous submission: the
// server currently hosting the target, or server 0's pool (shared overflow)
// for targets not yet placed (e.g. unmaterialized virtual sequencers).
func (r *Runtime) execServer(target ownership.ID) cluster.ServerID {
	if srv, ok := r.dir.Locate(target); ok {
		return srv
	}
	return 0
}

func (r *Runtime) run(target ownership.ID, method string, args []any) (any, error) {
	return r.runWith(target, method, args, false)
}

// runWith executes one event; asSub marks sub-events launched before Close,
// which must run to completion even while the runtime is draining.
func (r *Runtime) runWith(target ownership.ID, method string, args []any, asSub bool) (any, error) {
	if r.closed.Load() && !asSub {
		return nil, ErrClosed
	}
	start := time.Now()

	tc, err := r.Context(target)
	if err != nil && r.catchUpOnUnknown(err) {
		// The target may have been created on another node moments ago and
		// the notify hint not arrived yet: pull the mutation log once and
		// retry before failing the event.
		tc, err = r.Context(target)
	}
	if err != nil {
		return nil, err
	}
	m := tc.class.Method(method)
	if m == nil {
		return nil, fmt.Errorf("%s.%s: %w", tc.class.Name(), method, ErrUnknownMethod)
	}
	mode := EX
	if m.ReadOnly {
		mode = RO
	}
	ev := newEvent(r.eventSeq.Add(1), mode, target, method)

	res, err := r.executeEvent(ev, tc, m, args)

	r.recordLatency(ev.id, time.Since(start))
	r.Completed.IncAt(ev.id)
	r.launchSubs(ev)
	// executeEvent joined every async call and takeSubs drained the subs, so
	// nothing references the event anymore: recycle it.
	putEvent(ev)
	return res, err
}

// executeEvent drives Algorithm 2 for one event: dominator activation, path
// activation down to the target, execution, then release of everything.
func (r *Runtime) executeEvent(ev *event, tc *Context, m *schema.Method, args []any) (any, error) {
	// Resolve the dominator (getDom, Algorithm 2 line 3) together with one
	// consistent ownership snapshot; the activation path below is computed
	// against the same snapshot, so the admission sequence never mixes two
	// versions of the network.
	dom, view, err := r.graph.Resolve(ev.target)
	if err != nil {
		return nil, fmt.Errorf("dominator of %v: %w", ev.target, err)
	}
	ev.dom = dom

	// Multi-process mode: events execute on the process embodying the server
	// that hosts their sequencing point. When that is another node, delegate
	// the whole event there instead of running it against this process's
	// non-authoritative state replica.
	if r.isLocal != nil {
		if host, ok := r.dir.Locate(dom); ok && !r.isLocal(host) {
			if r.forward == nil {
				return nil, fmt.Errorf("%v on %v: %w", dom, host, ErrNotLocal)
			}
			return r.forward(host, ev.target, ev.method, args)
		}
	}

	// Make sure everything is released even on error paths; releaseAll is
	// idempotent per held context.
	defer ev.releaseAll()

	// Materialize the dominator's runtime entry first: virtual sequencer
	// contexts are created lazily and need placement before routing.
	domCtx, err := r.Context(dom)
	if err != nil {
		return nil, err
	}
	// Client request travels to the dominator's host (ACT message).
	domSrv, err := r.routeHop(ClientNode, dom, r.cfg.ChargeClientHops)
	if err != nil {
		return nil, err
	}
	if err := r.acquireCtx(ev, domCtx); err != nil {
		return nil, err
	}
	// Re-check locality now that admission succeeded: an event that queued
	// behind a migration's stop window wakes up *after* the group moved, and
	// by then the authoritative state lives on another node. The directory
	// was remapped before the stop released (RehostBatch under the group
	// lock), so this read is guaranteed to see the move.
	if r.isLocal != nil {
		if host, ok := r.dir.Locate(dom); ok && !r.isLocal(host) {
			ev.releaseAll()
			if r.forward == nil {
				return nil, fmt.Errorf("%v on %v: %w", dom, host, ErrNotLocal)
			}
			return r.forward(host, ev.target, ev.method, args)
		}
	}

	// Path activation dominator → target, top-down (activatePath).
	if dom != ev.target {
		path, err := view.Path(dom, ev.target)
		if err != nil {
			return nil, fmt.Errorf("activate path %v→%v: %w", dom, ev.target, err)
		}
		cur := domSrv
		for _, cid := range path[1:] {
			next, err := r.routeHop(cur, cid, true)
			if err != nil {
				return nil, err
			}
			cur = next
			cctx, err := r.Context(cid)
			if err != nil {
				return nil, err
			}
			if err := r.acquireCtx(ev, cctx); err != nil {
				return nil, err
			}
		}
	}

	res, err := r.invoke(ev, tc, m, args)
	// The event terminates only when all its asynchronous calls have; all
	// activations release at termination, *before* the reply travels back
	// (the deferred releaseAll above is an idempotent safety net for error
	// paths).
	ev.asyncWG.Wait()
	ev.releaseAll()

	// Reply to the client from the target's host.
	if r.cfg.ChargeClientHops {
		if srv, ok := r.dir.Locate(ev.target); ok {
			_ = r.cluster.Net().Hop(srv, ClientNode, r.cfg.MessageBytes)
		}
	}
	return res, err
}

// routeHop charges the network hop from `from` to the host of context id,
// including the stale-cache forwarding hop for recently migrated contexts,
// and returns the host. When charge is false only routing is performed.
func (r *Runtime) routeHop(from transport.NodeID, id ownership.ID, charge bool) (cluster.ServerID, error) {
	host, via, forwarded, ok := r.dir.Route(id)
	if !ok {
		return 0, fmt.Errorf("%v: %w", id, ErrUnknownContext)
	}
	if !charge {
		return host, nil
	}
	net := r.cluster.Net()
	if forwarded && via != host {
		if err := net.Hop(from, via, r.cfg.MessageBytes); err != nil {
			return 0, err
		}
		if err := net.Hop(via, host, r.cfg.MessageBytes); err != nil {
			return 0, err
		}
		return host, nil
	}
	if from != host {
		if err := net.Hop(from, host, r.cfg.MessageBytes); err != nil {
			return 0, err
		}
	}
	return host, nil
}

// acquireCtx activates a context for an event (enqueue + wait, per
// Algorithm 2) and records the hold for reverse-order release.
func (r *Runtime) acquireCtx(ev *event, c *Context) error {
	first, err := c.lock.acquire(ev.id, ev.mode, r.cfg.AcquireTimeout)
	if err != nil {
		return fmt.Errorf("activate %v for event %d: %w", c.id, ev.id, err)
	}
	if first {
		if !ev.recordHold(c) {
			// A concurrent same-event acquisition recorded it already;
			// drop the duplicate hold.
			c.lock.release(ev.id)
		}
	}
	return nil
}

// invoke runs one method call on a context the event has activated.
func (r *Runtime) invoke(ev *event, c *Context, m *schema.Method, args []any) (any, error) {
	if ev.mode == RO && !m.ReadOnly {
		return nil, fmt.Errorf("%s.%s in event %d: %w", c.class.Name(), m.Name, ev.id, ErrReadOnlyEvent)
	}
	if m.Handler == nil {
		return nil, fmt.Errorf("%s.%s: %w", c.class.Name(), m.Name, ErrUnknownMethod)
	}
	// Simulated CPU burns on the hosting server.
	if m.Cost > 0 {
		if srv, ok := r.dir.Locate(c.id); ok {
			if server, sok := r.cluster.Server(srv); sok {
				server.Work(m.Cost)
			}
		}
	}
	if !m.ReadOnly {
		c.runMu.Lock()
		defer c.runMu.Unlock()
		c.version.Add(1)
	}
	env := &callEnv{rt: r, ev: ev, ctx: c, method: m}
	res, err := m.Handler(env, args)
	// Crab: release this context as soon as its handler returns (§ 6.1.2),
	// letting the next event enter while our asynchronous tail call runs
	// below the crabbed child.
	if ev.markCrabReleasable(c.id) {
		c.lock.release(ev.id)
	}
	return res, err
}

// launchSubs starts the sub-events dispatched within a completed event
// (§ 3: they execute after their creator finishes). Each sub-event runs on
// the executor pool of the server hosting its target; when that queue is
// full the sub-event runs inline on this goroutine instead — dispatched
// work is never dropped, and the producer pays the cost (backpressure).
func (r *Runtime) launchSubs(ev *event) {
	for _, sub := range ev.takeSubs() {
		s := sub
		r.subWG.Add(1)
		task := func() {
			defer r.subWG.Done()
			if _, err := r.runWith(s.target, s.method, s.args, true); err != nil {
				r.SubEventErrors.Inc()
			}
		}
		if err := r.exec.trySubmit(r.execServer(s.target), task); err != nil {
			if err == ErrBackpressure {
				r.Backpressure.Inc()
			}
			task()
		}
	}
}

// recordLatency stripes both the histogram and the EWMA by event sequence
// number, so concurrent completions never contend on a shared counter; the
// merged view is assembled on read (RecentLatency, Latency queries).
func (r *Runtime) recordLatency(eventID uint64, d time.Duration) {
	r.Latency.RecordAt(eventID, d)
	// Each stripe sees only every 64th event, so the per-stripe smoothing
	// factor is raised to keep the *merged* signal's time constant at the
	// pre-sharding ~20 events: alpha = 1 - (1-0.05)^64 ≈ 0.96. A single
	// stripe is noisy, but RecentLatency averages 64 of them.
	r.ewma.ObserveAt(eventID, d, 0.96)
}

// RecentLatency returns an exponentially weighted moving average of event
// latency — the signal the eManager's SLA policy consumes (§ 6.2). Events
// are striped across per-stripe EWMAs on the record path; the merged view
// is the mean of the occupied stripes (event IDs spread uniformly, so
// stripes are equally weighted).
func (r *Runtime) RecentLatency() time.Duration {
	return r.ewma.Value()
}

// LockForMigration exclusively activates a context as the paper's migratec
// pseudo-event: it waits in the context's queue until running events drain,
// then holds it so state can be transferred. The returned release function
// reopens the context.
func (r *Runtime) LockForMigration(id ownership.ID) (func(), error) {
	return r.LockForMigrationTimeout(id, 0)
}

// LockForMigrationTimeout is LockForMigration with a bounded wait: when
// timeout is positive and the context's queue does not drain in time, it
// returns ErrAcquireTimeout with the context unlocked and reopened. The
// migration engine uses this to preempt group stop attempts that collide
// with in-flight multi-context events instead of deadlocking against them.
func (r *Runtime) LockForMigrationTimeout(id ownership.ID, timeout time.Duration) (func(), error) {
	c, err := r.Context(id)
	if err != nil {
		return nil, err
	}
	c.migrating.Store(true)
	ev := newEvent(r.eventSeq.Add(1), EX, id, "__migrate__")
	if _, err := c.lock.acquire(ev.id, EX, timeout); err != nil {
		c.migrating.Store(false)
		return nil, err
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			c.migrating.Store(false)
			c.lock.release(ev.id)
		})
	}, nil
}

// LockGroupForMigration exclusively activates every context of a migration
// group as one compound migratec pseudo-event: the group's stop window. The
// caller must pass ids in top-down ownership order (root before descendants)
// so the acquisition order matches event path activation. Unlike the
// one-context-at-a-time protocol, holding several members simultaneously can
// cycle with an event that asynchronously activates multiple children, so
// every member after the first is acquired with the given per-member timeout
// (zero blocks indefinitely): on a timeout everything acquired by this call
// is released and ErrAcquireTimeout is returned, and the caller retries
// after a backoff — deadlock avoidance by preemption. Concurrent group locks
// never contend with each other because the migration engine only admits
// disjoint groups. The returned release reopens every member (idempotent);
// on error, nothing acquired by this call stays held.
func (r *Runtime) LockGroupForMigration(ids []ownership.ID, memberTimeout time.Duration) (func(), error) {
	releases := make([]func(), 0, len(ids))
	releaseAll := func() {
		// Reopen in reverse acquisition order (children before root).
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}
	for i, id := range ids {
		timeout := memberTimeout
		if i == 0 {
			// The first member is acquired while holding nothing, which can
			// never cycle: wait it out.
			timeout = 0
		}
		rel, err := r.LockForMigrationTimeout(id, timeout)
		if err != nil {
			releaseAll()
			return nil, fmt.Errorf("group stop %v: %w", id, err)
		}
		releases = append(releases, rel)
	}
	var once sync.Once
	return func() { once.Do(releaseAll) }, nil
}

// RehostBatch moves a whole migration group to one server: a single
// directory update (one staleness epoch via Directory.MoveBatch) plus bulk
// hosted-counter accounting. The caller must hold every member via
// LockGroupForMigration. Members already on the destination are counted as
// no-ops.
func (r *Runtime) RehostBatch(ids []ownership.ID, to cluster.ServerID) error {
	dst, ok := r.cluster.Server(to)
	if !ok {
		return fmt.Errorf("rehost %v: %w", to, cluster.ErrNoSuchServer)
	}
	// Tally departures per source server before the batch move.
	departed := make(map[cluster.ServerID]int)
	moved := 0
	for _, id := range ids {
		from, ok := r.dir.Locate(id)
		if !ok {
			return fmt.Errorf("%v: %w", id, ErrUnknownContext)
		}
		if from != to {
			departed[from]++
			moved++
		}
	}
	if err := r.dir.MoveBatch(ids, to); err != nil {
		return err
	}
	for from, n := range departed {
		if s, ok := r.cluster.Server(from); ok {
			s.AddHosted(-n)
		}
	}
	dst.AddHosted(moved)
	return nil
}

// Rehost moves a context's placement to another server, adjusting hosted
// counters and opening the directory's forwarding window. The caller must
// hold the context via LockForMigration.
func (r *Runtime) Rehost(id ownership.ID, to cluster.ServerID) error {
	from, ok := r.dir.Locate(id)
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrUnknownContext)
	}
	if _, ok := r.cluster.Server(to); !ok {
		return fmt.Errorf("rehost %v: %w", to, cluster.ErrNoSuchServer)
	}
	if err := r.dir.Move(id, to); err != nil {
		return err
	}
	if s, ok := r.cluster.Server(from); ok {
		s.AddHosted(-1)
	}
	if s, ok := r.cluster.Server(to); ok {
		s.AddHosted(1)
	}
	return nil
}
