package core

import (
	"fmt"
	"sync"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
)

// Directory maps contexts to their hosting servers (§ 5.1 "Context
// Mapping"). The authoritative copy lives with the eManager in cloud
// storage; hosts and clients cache it. This in-process directory models the
// cached mapping: lookups are cheap, and for a staleness window after a
// migration, routing to a moved context reports the old server so the
// runtime can charge the forwarding hop the paper describes ("s1 will
// forward those events to s2 directly and notify source host to update its
// context map").
type Directory struct {
	staleFor time.Duration

	mu    sync.RWMutex
	loc   map[ownership.ID]cluster.ServerID
	moved map[ownership.ID]movedRecord
}

type movedRecord struct {
	old cluster.ServerID
	at  time.Time
}

// NewDirectory returns an empty directory whose moved-context forwarding
// window is staleFor.
func NewDirectory(staleFor time.Duration) *Directory {
	return &Directory{
		staleFor: staleFor,
		loc:      make(map[ownership.ID]cluster.ServerID),
		moved:    make(map[ownership.ID]movedRecord),
	}
}

// Place records the initial placement of a context.
func (d *Directory) Place(id ownership.ID, s cluster.ServerID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.loc[id] = s
}

// Locate returns the current host of a context.
func (d *Directory) Locate(id ownership.ID) (cluster.ServerID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.loc[id]
	return s, ok
}

// Route returns the host of a context plus, when the context migrated
// within the staleness window, the old host a stale cache would still point
// at (the caller charges the extra forwarding hop).
func (d *Directory) Route(id ownership.ID) (host cluster.ServerID, staleVia cluster.ServerID, forwarded bool, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.loc[id]
	if !ok {
		return 0, 0, false, false
	}
	if rec, moved := d.moved[id]; moved && time.Since(rec.at) < d.staleFor {
		return s, rec.old, true, true
	}
	return s, 0, false, true
}

// Move rehosts a context and opens its forwarding window.
func (d *Directory) Move(id ownership.ID, to cluster.ServerID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, ok := d.loc[id]
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrUnknownContext)
	}
	d.loc[id] = to
	d.moved[id] = movedRecord{old: old, at: time.Now()}
	return nil
}

// Forget removes a context from the directory.
func (d *Directory) Forget(id ownership.ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.loc, id)
	delete(d.moved, id)
}

// HostedOn returns the contexts currently placed on the given server.
func (d *Directory) HostedOn(s cluster.ServerID) []ownership.ID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []ownership.ID
	for id, host := range d.loc {
		if host == s {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of placed contexts.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.loc)
}
