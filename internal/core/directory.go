package core

import (
	"fmt"
	"sync"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
)

// Directory maps contexts to their hosting servers (§ 5.1 "Context
// Mapping"). The authoritative copy lives with the eManager in cloud
// storage; hosts and clients cache it. This in-process directory models the
// cached mapping: lookups are cheap, and for a staleness window after a
// migration, routing to a moved context reports the old server so the
// runtime can charge the forwarding hop the paper describes ("s1 will
// forward those events to s2 directly and notify source host to update its
// context map").
//
// The directory is striped the same way as the context registry: per-event
// operations (Locate, Route, Place, Move, Forget) touch only the shard the
// context hashes to, so events on distinct contexts never serialize here.
// Whole-directory reads (HostedOn, Len, Snapshot) walk the shards one at a
// time; they serve the eManager's control plane, not the event hot path.
type Directory struct {
	staleFor time.Duration
	shards   [shardCount]dirShard
}

type dirShard struct {
	mu    sync.RWMutex
	loc   map[ownership.ID]cluster.ServerID
	moved map[ownership.ID]movedRecord
}

type movedRecord struct {
	old cluster.ServerID
	at  time.Time
}

// NewDirectory returns an empty directory whose moved-context forwarding
// window is staleFor.
func NewDirectory(staleFor time.Duration) *Directory {
	d := &Directory{staleFor: staleFor}
	for i := range d.shards {
		d.shards[i].loc = make(map[ownership.ID]cluster.ServerID)
		d.shards[i].moved = make(map[ownership.ID]movedRecord)
	}
	return d
}

func (d *Directory) shard(id ownership.ID) *dirShard {
	return &d.shards[shardFor(id)]
}

// Place records the initial placement of a context.
func (d *Directory) Place(id ownership.ID, s cluster.ServerID) {
	sh := d.shard(id)
	sh.mu.Lock()
	sh.loc[id] = s
	sh.mu.Unlock()
}

// Locate returns the current host of a context.
func (d *Directory) Locate(id ownership.ID) (cluster.ServerID, bool) {
	sh := d.shard(id)
	sh.mu.RLock()
	s, ok := sh.loc[id]
	sh.mu.RUnlock()
	return s, ok
}

// Route returns the host of a context plus, when the context migrated
// within the staleness window, the old host a stale cache would still point
// at (the caller charges the extra forwarding hop).
func (d *Directory) Route(id ownership.ID) (host cluster.ServerID, staleVia cluster.ServerID, forwarded bool, ok bool) {
	sh := d.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s, ok := sh.loc[id]
	if !ok {
		return 0, 0, false, false
	}
	if rec, moved := sh.moved[id]; moved && time.Since(rec.at) < d.staleFor {
		return s, rec.old, true, true
	}
	return s, 0, false, true
}

// Move rehosts a context and opens its forwarding window.
func (d *Directory) Move(id ownership.ID, to cluster.ServerID) error {
	sh := d.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.loc[id]
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrUnknownContext)
	}
	sh.loc[id] = to
	sh.moved[id] = movedRecord{old: old, at: time.Now()}
	return nil
}

// MoveBatch rehosts a whole migration group in one atomic directory update
// with a single staleness epoch: every involved shard is locked (in index
// order, so concurrent batches never deadlock) before any member moves, so
// an observer never sees the group split across servers, and every member's
// forwarding window opens at the same instant — one stale-cache generation
// for the whole group instead of N per-member windows (§ 5.2, batched). An
// unknown member fails the whole batch with no moves applied.
func (d *Directory) MoveBatch(ids []ownership.ID, to cluster.ServerID) error {
	// Bucket the group by shard; lock the involved shards in index order.
	var byShard [shardCount][]ownership.ID
	for _, id := range ids {
		s := shardFor(id)
		byShard[s] = append(byShard[s], id)
	}
	locked := make([]int, 0, len(ids))
	for si := range byShard {
		if len(byShard[si]) > 0 {
			d.shards[si].mu.Lock()
			locked = append(locked, si)
		}
	}
	defer func() {
		for _, si := range locked {
			d.shards[si].mu.Unlock()
		}
	}()
	// Validate under the locks: all-or-nothing.
	for _, si := range locked {
		sh := &d.shards[si]
		for _, id := range byShard[si] {
			if _, ok := sh.loc[id]; !ok {
				return fmt.Errorf("%v: %w", id, ErrUnknownContext)
			}
		}
	}
	// Apply: one epoch timestamp for the whole group.
	epoch := time.Now()
	for _, si := range locked {
		sh := &d.shards[si]
		for _, id := range byShard[si] {
			old := sh.loc[id]
			sh.loc[id] = to
			if old != to {
				sh.moved[id] = movedRecord{old: old, at: epoch}
			}
		}
	}
	return nil
}

// Forget removes a context from the directory.
func (d *Directory) Forget(id ownership.ID) {
	sh := d.shard(id)
	sh.mu.Lock()
	delete(sh.loc, id)
	delete(sh.moved, id)
	sh.mu.Unlock()
}

// HostedOn returns the contexts currently placed on the given server.
func (d *Directory) HostedOn(s cluster.ServerID) []ownership.ID {
	var out []ownership.ID
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		for id, host := range sh.loc {
			if host == s {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Len returns the number of placed contexts.
func (d *Directory) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		n += len(sh.loc)
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot copies the full context→server mapping, shard by shard. The
// eManager uses it to persist the authoritative copy to cloud storage
// (§ 5.1); each shard is internally consistent, and placements that race the
// walk land in the next snapshot.
func (d *Directory) Snapshot() map[ownership.ID]cluster.ServerID {
	out := make(map[ownership.ID]cluster.ServerID)
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		for id, host := range sh.loc {
			out[id] = host
		}
		sh.mu.RUnlock()
	}
	return out
}
