package core

import (
	"sync"

	"aeon/internal/ownership"
)

// shardCount is the number of stripes used by the context registry and the
// placement directory. 64 comfortably exceeds the core counts we target
// (≤ 32) so independent events almost never collide on a stripe, while
// keeping the fixed footprint trivial (a few KB per structure). Power of two
// so shard selection is a mask, not a division.
const shardCount = 64

// shardFor maps a context ID to its stripe. IDs are small sequential
// integers, so they are mixed with a 64-bit finalizer (splitmix64's) first;
// taking the low bits of the raw ID would stripe fine today but would
// silently degenerate if ID allocation ever became structured (e.g. range
// partitioned per server).
func shardFor(id ownership.ID) uint64 {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & (shardCount - 1)
}

// registry is the striped replacement for the runtime's former global
// contexts map: one RWMutex-guarded map per shard, so context lookups and
// registrations on different shards never serialize against each other.
type registry struct {
	shards [shardCount]registryShard
}

type registryShard struct {
	mu sync.RWMutex
	m  map[ownership.ID]*Context
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].m = make(map[ownership.ID]*Context)
	}
	return r
}

func (r *registry) shard(id ownership.ID) *registryShard {
	return &r.shards[shardFor(id)]
}

// get returns the registered context, if any.
func (r *registry) get(id ownership.ID) (*Context, bool) {
	s := r.shard(id)
	s.mu.RLock()
	c, ok := s.m[id]
	s.mu.RUnlock()
	return c, ok
}

// put registers a context unconditionally.
func (r *registry) put(id ownership.ID, c *Context) {
	s := r.shard(id)
	s.mu.Lock()
	s.m[id] = c
	s.mu.Unlock()
}

// getOrPut returns the registered context for id, or registers the one built
// by mk. loaded reports whether an existing entry was returned. mk runs
// under the shard lock, so losers of a registration race are never
// constructed twice and partially initialized contexts are never visible.
func (r *registry) getOrPut(id ownership.ID, mk func() *Context) (c *Context, loaded bool) {
	s := r.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.m[id]; ok {
		return c, true
	}
	c = mk()
	s.m[id] = c
	return c, false
}

// delete removes a context registration.
func (r *registry) delete(id ownership.ID) {
	s := r.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// len returns the number of registered contexts (sums shard sizes; the
// result is a consistent-enough estimate under concurrent mutation).
func (r *registry) len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
