package core

import (
	"fmt"

	"aeon/internal/ownership"
)

// WithSubtreeShared runs fn while holding the given context and all its
// transitive descendants in share (readonly) mode, acquired top-down from
// the dominator per the activation protocol. It is the locking substrate of
// the § 5.3 snapshot event: fn observes a consistent cut — no event can be
// mid-flight inside the subtree while it runs.
//
// The ids passed to fn are the root followed by its descendants in
// acquisition order.
func (r *Runtime) WithSubtreeShared(root ownership.ID, fn func(ids []ownership.ID) error) error {
	if r.closed.Load() {
		return ErrClosed
	}
	ev := newEvent(r.eventSeq.Add(1), RO, root, "__snapshot__")
	defer ev.releaseAll()

	// One consistent ownership snapshot drives the whole acquisition: the
	// dominator, the activation path, and the subtree walk all observe the
	// same version of the network.
	dom, view, err := r.graph.Resolve(root)
	if err != nil {
		return fmt.Errorf("dominator of %v: %w", root, err)
	}
	domCtx, err := r.Context(dom)
	if err != nil {
		return err
	}
	if err := r.acquireCtx(ev, domCtx); err != nil {
		return err
	}
	if dom != root {
		path, err := view.Path(dom, root)
		if err != nil {
			return err
		}
		for _, cid := range path[1:] {
			c, err := r.Context(cid)
			if err != nil {
				return err
			}
			if err := r.acquireCtx(ev, c); err != nil {
				return err
			}
		}
	}

	// Breadth-first top-down over the subtree.
	ids := []ownership.ID{root}
	seen := map[ownership.ID]bool{root: true}
	for i := 0; i < len(ids); i++ {
		children, err := view.Children(ids[i])
		if err != nil {
			continue
		}
		for _, ch := range children {
			if seen[ch] {
				continue
			}
			seen[ch] = true
			c, err := r.Context(ch)
			if err != nil {
				// Destroyed after the snapshot was taken; its parent is held,
				// so nothing can be mid-flight below it.
				continue
			}
			if err := r.acquireCtx(ev, c); err != nil {
				return err
			}
			ids = append(ids, ch)
		}
	}
	return fn(ids)
}
