package core

import (
	"testing"
	"time"

	"aeon/internal/ownership"
)

func TestDirectoryPlaceLocate(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Place(ownership.ID(1), 10)
	srv, ok := d.Locate(ownership.ID(1))
	if !ok || srv != 10 {
		t.Fatalf("Locate = %v, %v", srv, ok)
	}
	if _, ok := d.Locate(ownership.ID(2)); ok {
		t.Fatal("unknown context should not locate")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDirectoryMoveOpensForwardingWindow(t *testing.T) {
	d := NewDirectory(50 * time.Millisecond)
	d.Place(ownership.ID(1), 10)
	if err := d.Move(ownership.ID(1), 20); err != nil {
		t.Fatal(err)
	}
	host, via, forwarded, ok := d.Route(ownership.ID(1))
	if !ok || host != 20 || !forwarded || via != 10 {
		t.Fatalf("Route = host %v via %v fwd %v ok %v", host, via, forwarded, ok)
	}
	// After the staleness window, routing is direct.
	time.Sleep(60 * time.Millisecond)
	host, _, forwarded, ok = d.Route(ownership.ID(1))
	if !ok || host != 20 || forwarded {
		t.Fatalf("post-window Route = host %v fwd %v", host, forwarded)
	}
}

func TestDirectoryMoveUnknown(t *testing.T) {
	d := NewDirectory(time.Second)
	if err := d.Move(ownership.ID(9), 20); err == nil {
		t.Fatal("moving an unknown context must fail")
	}
}

func TestDirectoryMoveBatchSingleEpoch(t *testing.T) {
	d := NewDirectory(50 * time.Millisecond)
	// Enough members to span several shards.
	ids := make([]ownership.ID, 12)
	for i := range ids {
		ids[i] = ownership.ID(i + 1)
		d.Place(ids[i], 10)
	}
	if err := d.MoveBatch(ids, 20); err != nil {
		t.Fatal(err)
	}
	// Every member forwards through the old host.
	for _, id := range ids {
		host, via, forwarded, ok := d.Route(id)
		if !ok || host != 20 || !forwarded || via != 10 {
			t.Fatalf("%v: Route = host %v via %v fwd %v ok %v", id, host, via, forwarded, ok)
		}
	}
	// One staleness epoch: the whole group's forwarding windows close
	// together.
	time.Sleep(60 * time.Millisecond)
	for _, id := range ids {
		if _, _, forwarded, _ := d.Route(id); forwarded {
			t.Fatalf("%v still forwarded after the shared window", id)
		}
	}
}

func TestDirectoryMoveBatchAllOrNothing(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Place(ownership.ID(1), 10)
	d.Place(ownership.ID(2), 10)
	err := d.MoveBatch([]ownership.ID{1, 99, 2}, 20)
	if err == nil {
		t.Fatal("batch with an unknown member must fail")
	}
	for _, id := range []ownership.ID{1, 2} {
		if srv, _ := d.Locate(id); srv != 10 {
			t.Fatalf("%v moved to %v despite failed batch", id, srv)
		}
	}
}

func TestDirectoryMoveBatchNoopMemberSkipsWindow(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Place(ownership.ID(1), 10)
	d.Place(ownership.ID(2), 20) // already on the destination
	if err := d.MoveBatch([]ownership.ID{1, 2}, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, forwarded, _ := d.Route(ownership.ID(2)); forwarded {
		t.Fatal("member already on the destination must not open a forwarding window")
	}
	if _, _, forwarded, _ := d.Route(ownership.ID(1)); !forwarded {
		t.Fatal("moved member must forward")
	}
}

func TestDirectoryHostedOnAndForget(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Place(ownership.ID(1), 10)
	d.Place(ownership.ID(2), 10)
	d.Place(ownership.ID(3), 20)
	on10 := d.HostedOn(10)
	if len(on10) != 2 {
		t.Fatalf("HostedOn(10) = %v", on10)
	}
	d.Forget(ownership.ID(1))
	if len(d.HostedOn(10)) != 1 {
		t.Fatal("Forget should remove the context")
	}
	if _, ok := d.Locate(ownership.ID(1)); ok {
		t.Fatal("forgotten context should not locate")
	}
}
