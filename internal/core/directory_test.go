package core

import (
	"testing"
	"time"

	"aeon/internal/ownership"
)

func TestDirectoryPlaceLocate(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Place(ownership.ID(1), 10)
	srv, ok := d.Locate(ownership.ID(1))
	if !ok || srv != 10 {
		t.Fatalf("Locate = %v, %v", srv, ok)
	}
	if _, ok := d.Locate(ownership.ID(2)); ok {
		t.Fatal("unknown context should not locate")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDirectoryMoveOpensForwardingWindow(t *testing.T) {
	d := NewDirectory(50 * time.Millisecond)
	d.Place(ownership.ID(1), 10)
	if err := d.Move(ownership.ID(1), 20); err != nil {
		t.Fatal(err)
	}
	host, via, forwarded, ok := d.Route(ownership.ID(1))
	if !ok || host != 20 || !forwarded || via != 10 {
		t.Fatalf("Route = host %v via %v fwd %v ok %v", host, via, forwarded, ok)
	}
	// After the staleness window, routing is direct.
	time.Sleep(60 * time.Millisecond)
	host, _, forwarded, ok = d.Route(ownership.ID(1))
	if !ok || host != 20 || forwarded {
		t.Fatalf("post-window Route = host %v fwd %v", host, forwarded)
	}
}

func TestDirectoryMoveUnknown(t *testing.T) {
	d := NewDirectory(time.Second)
	if err := d.Move(ownership.ID(9), 20); err == nil {
		t.Fatal("moving an unknown context must fail")
	}
}

func TestDirectoryHostedOnAndForget(t *testing.T) {
	d := NewDirectory(time.Second)
	d.Place(ownership.ID(1), 10)
	d.Place(ownership.ID(2), 10)
	d.Place(ownership.ID(3), 20)
	on10 := d.HostedOn(10)
	if len(on10) != 2 {
		t.Fatalf("HostedOn(10) = %v", on10)
	}
	d.Forget(ownership.ID(1))
	if len(d.HostedOn(10)) != 1 {
		t.Fatal("Forget should remove the context")
	}
	if _, ok := d.Locate(ownership.ID(1)); ok {
		t.Fatal("forgotten context should not locate")
	}
}
