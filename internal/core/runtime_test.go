package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// itemState is a gold store used by most runtime tests.
type itemState struct {
	Gold int
	// Log records event IDs in execution order (serializability oracle).
	mu  sync.Mutex
	log []uint64
}

func (s *itemState) record(ev uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, ev)
}

func (s *itemState) accessLog() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, len(s.log))
	copy(out, s.log)
	return out
}

// testWorld is the Figure 3-like fixture: a Room owning two Players that
// share two Items.
type testWorld struct {
	rt           *Runtime
	room, p1, p2 ownership.ID
	i1, i2       ownership.ID
}

func gameTestSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	room := s.MustDeclareClass("Room", func() any { return &itemState{} })
	player := s.MustDeclareClass("Player", func() any { return &itemState{} })
	item := s.MustDeclareClass("Item", func() any { return &itemState{} })

	item.MustDeclareMethod("add", func(call schema.Call, args []any) (any, error) {
		st, _ := call.State().(*itemState)
		st.record(call.EventID())
		st.Gold += args[0].(int)
		return st.Gold, nil
	})
	item.MustDeclareMethod("peek", func(call schema.Call, args []any) (any, error) {
		st, _ := call.State().(*itemState)
		return st.Gold, nil
	}, schema.RO())

	// transfer moves amt from item args[0] to item args[1] — acquisition
	// order follows the argument order, so two players calling with crossed
	// orders exercise the paper's deadlock scenario.
	player.MustDeclareMethod("transfer", func(call schema.Call, args []any) (any, error) {
		from := args[0].(ownership.ID)
		to := args[1].(ownership.ID)
		amt := args[2].(int)
		if _, err := call.Sync(from, "add", -amt); err != nil {
			return nil, err
		}
		if _, err := call.Sync(to, "add", amt); err != nil {
			return nil, err
		}
		return nil, nil
	}, schema.MayCall("Item", "add"))

	player.MustDeclareMethod("sum", func(call schema.Call, args []any) (any, error) {
		total := 0
		items, err := call.Children("Item")
		if err != nil {
			return nil, err
		}
		for _, it := range items {
			v, err := call.Sync(it, "peek")
			if err != nil {
				return nil, err
			}
			total += v.(int)
		}
		return total, nil
	}, schema.RO(), schema.MayCall("Item", "peek"))

	room.MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) {
		return "ok", nil
	})
	room.MustDeclareMethod("broadcast", func(call schema.Call, args []any) (any, error) {
		players, err := call.Children("Player")
		if err != nil {
			return nil, err
		}
		var results []schema.AsyncResult
		for _, p := range players {
			results = append(results, call.Async(p, "transfer", args[0], args[1], args[2].(int)))
		}
		for _, r := range results {
			if _, err := r.Wait(); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}, schema.MayCall("Player", "transfer"))

	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestRuntime(t *testing.T, nServers int) *Runtime {
	t.Helper()
	s := gameTestSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < nServers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, err := New(s, ownership.NewGraph(), cl, Config{
		AcquireTimeout: 10 * time.Second, // deadlock watchdog for tests
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	rt := newTestRuntime(t, 2)
	w := &testWorld{rt: rt}
	var err error
	w.room, err = rt.CreateContext("Room")
	if err != nil {
		t.Fatal(err)
	}
	w.p1, _ = rt.CreateContext("Player", w.room)
	w.p2, _ = rt.CreateContext("Player", w.room)
	w.i1, err = rt.CreateContext("Item", w.p1, w.p2)
	if err != nil {
		t.Fatal(err)
	}
	w.i2, _ = rt.CreateContext("Item", w.p1, w.p2)
	// Seed gold.
	if _, err := rt.Submit(w.i1, "add", 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Submit(w.i2, "add", 1000); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *testWorld) itemState(t *testing.T, id ownership.ID) *itemState {
	t.Helper()
	c, err := w.rt.Context(id)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c.State().(*itemState)
	if !ok {
		t.Fatalf("state of %v is %T", id, c.State())
	}
	return st
}

func TestSubmitBasic(t *testing.T) {
	w := newTestWorld(t)
	res, err := w.rt.Submit(w.room, "noop")
	if err != nil {
		t.Fatal(err)
	}
	if res != "ok" {
		t.Fatalf("res = %v", res)
	}
}

func TestSubmitUnknownMethod(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.rt.Submit(w.room, "ghost"); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("err = %v; want ErrUnknownMethod", err)
	}
}

func TestSubmitUnknownContext(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.rt.Submit(ownership.ID(9999), "noop"); !errors.Is(err, ErrUnknownContext) {
		t.Fatalf("err = %v; want ErrUnknownContext", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	w := newTestWorld(t)
	w.rt.Close()
	if _, err := w.rt.Submit(w.room, "noop"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v; want ErrClosed", err)
	}
}

func TestSubmitAsyncFuture(t *testing.T) {
	w := newTestWorld(t)
	f := w.rt.SubmitAsync(w.room, "noop")
	res, err := f.Wait()
	if err != nil || res != "ok" {
		t.Fatalf("future = %v, %v", res, err)
	}
}

func TestTransferMovesGold(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.rt.Submit(w.p1, "transfer", w.i1, w.i2, 100); err != nil {
		t.Fatal(err)
	}
	if g := w.itemState(t, w.i1).Gold; g != 900 {
		t.Fatalf("i1 gold = %d; want 900", g)
	}
	if g := w.itemState(t, w.i2).Gold; g != 1100 {
		t.Fatalf("i2 gold = %d; want 1100", g)
	}
}

// TestDeadlockScenarioFromPaper is § 4's example: Player1 moves gold
// Treasure→Horse while Player2 moves Horse→Treasure, concurrently and
// repeatedly. Without dominator sequencing the crossed acquisition order
// deadlocks; AEON must complete every event (the 10s acquire watchdog in
// the test runtime would trip otherwise) and conserve gold.
func TestDeadlockScenarioFromPaper(t *testing.T) {
	w := newTestWorld(t)
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := w.rt.Submit(w.p1, "transfer", w.i1, w.i2, 1); err != nil {
				errs <- err
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := w.rt.Submit(w.p2, "transfer", w.i2, w.i1, 1); err != nil {
				errs <- err
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("event failed (deadlock?): %v", err)
	}
	total := w.itemState(t, w.i1).Gold + w.itemState(t, w.i2).Gold
	if total != 2000 {
		t.Fatalf("gold total = %d; want 2000 (conservation)", total)
	}
}

// TestStrictSerializability runs randomized crossing transfers from many
// clients and validates the per-item access logs: the relative order of any
// two events must agree across all items they both touched (conflict
// serializability), which for this workload implies a single total order.
func TestStrictSerializability(t *testing.T) {
	w := newTestWorld(t)
	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				p, from, to := w.p1, w.i1, w.i2
				if rng.Intn(2) == 0 {
					p = w.p2
				}
				if rng.Intn(2) == 0 {
					from, to = to, from
				}
				if _, err := w.rt.Submit(p, "transfer", from, to, 1); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()

	log1 := w.itemState(t, w.i1).accessLog()
	log2 := w.itemState(t, w.i2).accessLog()

	// Each transfer touches both items, so both logs contain the same event
	// set; serializability of this workload requires identical order.
	pos1 := make(map[uint64]int, len(log1))
	for i, ev := range log1 {
		pos1[ev] = i
	}
	shared := 0
	prev := -1
	for _, ev := range log2 {
		p, ok := pos1[ev]
		if !ok {
			continue // seeding events touched a single item
		}
		shared++
		if p <= prev {
			t.Fatalf("event order disagrees between items: event %d at %d after %d", ev, p, prev)
		}
		prev = p
	}
	if shared < clients*perClient {
		t.Fatalf("only %d shared events logged; want ≥ %d", shared, clients*perClient)
	}
	if total := w.itemState(t, w.i1).Gold + w.itemState(t, w.i2).Gold; total != 2000 {
		t.Fatalf("gold total = %d; want 2000", total)
	}
}

func TestReadOnlyEventsRunConcurrently(t *testing.T) {
	s := schema.New()
	cls := s.MustDeclareClass("C", func() any { return &itemState{} })
	cls.MustDeclareMethod("slowRead", func(call schema.Call, args []any) (any, error) {
		time.Sleep(40 * time.Millisecond)
		return nil, nil
	}, schema.RO())
	cls.MustDeclareMethod("slowWrite", func(call schema.Call, args []any) (any, error) {
		time.Sleep(40 * time.Millisecond)
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, err := New(s, ownership.NewGraph(), cl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	id, _ := rt.CreateContext("C")

	// Four concurrent readonly events should overlap.
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Submit(id, "slowRead"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 120*time.Millisecond {
		t.Fatalf("4 RO events took %v; want ≈40ms (concurrent)", el)
	}

	// Four exclusive events must serialize.
	start = time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Submit(id, "slowWrite"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("4 EX events took %v; want ≥160ms (serialized)", el)
	}
}

func TestReadOnlyEventCannotMutate(t *testing.T) {
	w := newTestWorld(t)
	// sum is RO and only calls peek; calling add through an RO event
	// directly must fail.
	s := w.rt.Schema()
	if s.Class("Item").Method("add").ReadOnly {
		t.Fatal("test setup: add must be EX")
	}
	if _, err := w.rt.Submit(w.p1, "sum"); err != nil {
		t.Fatalf("RO event: %v", err)
	}
}

func TestAccessControl(t *testing.T) {
	w := newTestWorld(t)
	// A player calling an item it does not own directly: create a third
	// item under p2 only; p1 cannot reach it.
	i3, err := w.rt.CreateContext("Item", w.p2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.rt.Submit(w.p1, "transfer", i3, w.i2, 1)
	if !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v; want ErrNotOwned", err)
	}
}

func TestBroadcastAsync(t *testing.T) {
	w := newTestWorld(t)
	// Room broadcasts a transfer to both players: both run, gold conserved,
	// and the event completes only after both asyncs do.
	if _, err := w.rt.Submit(w.room, "broadcast", w.i1, w.i2, 5); err != nil {
		t.Fatal(err)
	}
	total := w.itemState(t, w.i1).Gold + w.itemState(t, w.i2).Gold
	if total != 2000 {
		t.Fatalf("total = %d; want 2000", total)
	}
	if g := w.itemState(t, w.i2).Gold; g != 1010 {
		t.Fatalf("i2 = %d; want 1010 (two +5 transfers)", g)
	}
}

func TestDominatorsInWorld(t *testing.T) {
	w := newTestWorld(t)
	d1, err := w.rt.Graph().Dom(w.p1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != w.room {
		t.Fatalf("dom(p1) = %v; want room %v", d1, w.room)
	}
	di, _ := w.rt.Graph().Dom(w.i1)
	if di != w.i1 {
		t.Fatalf("dom(i1) = %v; want itself", di)
	}
}

func TestEventTargetingSharedItemDirectly(t *testing.T) {
	// The Fig. 4 E3 case: events can land directly on a shared leaf and
	// serialize against player events via the leaf's own queue.
	w := newTestWorld(t)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				_, err = w.rt.Submit(w.i1, "add", 1)
			} else {
				_, err = w.rt.Submit(w.p1, "transfer", w.i1, w.i2, 1)
			}
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	total := w.itemState(t, w.i1).Gold + w.itemState(t, w.i2).Gold
	if total != 2010 {
		t.Fatalf("total = %d; want 2010", total)
	}
}

func TestVirtualDominatorSequencing(t *testing.T) {
	// Two root players sharing an item: the dominator is a virtual context;
	// crossing transfers must still serialize without deadlock.
	s := gameTestSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, err := New(s, ownership.NewGraph(), cl, Config{AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	p1, _ := rt.CreateContext("Player")
	p2, _ := rt.CreateContext("Player")
	i1, _ := rt.CreateContext("Item", p1, p2)
	i2, _ := rt.CreateContext("Item", p1, p2)
	if _, err := rt.Submit(i1, "add", 100); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, from, to := p1, i1, i2
			if i%2 == 0 {
				p, from, to = p2, i2, i1
			}
			if _, err := rt.Submit(p, "transfer", from, to, 1); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	c1, _ := rt.Context(i1)
	c2, _ := rt.Context(i2)
	total := c1.State().(*itemState).Gold + c2.State().(*itemState).Gold
	if total != 100 {
		t.Fatalf("total = %d; want 100", total)
	}
}

func TestDispatchSubEvent(t *testing.T) {
	s := schema.New()
	cls := s.MustDeclareClass("C", func() any { return &itemState{} })
	cls.MustDeclareMethod("add", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*itemState)
		st.Gold += args[0].(int)
		return nil, nil
	})
	cls.MustDeclareMethod("addTwice", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*itemState)
		st.Gold += args[0].(int)
		// The second half runs as a separate event after this one.
		call.Dispatch(call.Self(), "add", args[0])
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	id, _ := rt.CreateContext("C")
	if _, err := rt.Submit(id, "addTwice", 5); err != nil {
		t.Fatal(err)
	}
	rt.Close() // waits for the dispatched sub-event
	c, _ := rt.Context(id)
	if g := c.State().(*itemState).Gold; g != 10 {
		t.Fatalf("gold = %d; want 10 after sub-event", g)
	}
}

func TestNewContextWithinEvent(t *testing.T) {
	s := schema.New()
	parent := s.MustDeclareClass("Parent", func() any { return &itemState{} })
	s.MustDeclareClass("Child", func() any { return &itemState{} }).
		MustDeclareMethod("add", func(call schema.Call, args []any) (any, error) {
			call.State().(*itemState).Gold += args[0].(int)
			return nil, nil
		})
	parent.MustDeclareMethod("spawn", func(call schema.Call, args []any) (any, error) {
		id, err := call.NewContext("Child", call.Self())
		if err != nil {
			return nil, err
		}
		// The fresh child is immediately callable within this event.
		if _, err := call.Sync(id, "add", 42); err != nil {
			return nil, err
		}
		return id, nil
	}, schema.MayCall("Child", "add"))
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	p, _ := rt.CreateContext("Parent")
	res, err := rt.Submit(p, "spawn")
	if err != nil {
		t.Fatal(err)
	}
	childID := res.(ownership.ID)
	c, err := rt.Context(childID)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.State().(*itemState).Gold; g != 42 {
		t.Fatalf("child gold = %d; want 42", g)
	}
	// Locality: the child is co-located with its owner.
	ps, _ := rt.Directory().Locate(p)
	cs, _ := rt.Directory().Locate(childID)
	if ps != cs {
		t.Fatalf("child on %v; owner on %v; want co-located", cs, ps)
	}
}

func TestCrabReleasesEarly(t *testing.T) {
	s := schema.New()
	wh := s.MustDeclareClass("Warehouse", func() any { return &itemState{} })
	district := s.MustDeclareClass("District", func() any { return &itemState{} })
	district.MustDeclareMethod("slow", func(call schema.Call, args []any) (any, error) {
		time.Sleep(60 * time.Millisecond)
		call.State().(*itemState).Gold++
		return nil, nil
	})
	wh.MustDeclareMethod("payment", func(call schema.Call, args []any) (any, error) {
		call.State().(*itemState).Gold++
		return nil, call.Crab(args[0].(ownership.ID), "slow")
	}, schema.MayCall("District", "slow"))
	wh.MustDeclareMethod("quick", func(call schema.Call, args []any) (any, error) {
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	w, _ := rt.CreateContext("Warehouse")
	d, _ := rt.CreateContext("District", w)

	// Start a payment (which crabs into the slow district call), then time
	// how long a second event waits to enter the warehouse: with crabbing
	// it must enter well before the 60ms district work finishes.
	f := rt.SubmitAsync(w, "payment", d)
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	if _, err := rt.Submit(w, "quick"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("second event waited %v; crab should have released the warehouse", el)
	}
	if _, err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	dc, _ := rt.Context(d)
	if g := dc.State().(*itemState).Gold; g != 1 {
		t.Fatalf("district work lost: gold = %d", g)
	}
}

func TestMigrationLockDrainsAndBlocks(t *testing.T) {
	w := newTestWorld(t)
	release, err := w.rt.LockForMigration(w.i1)
	if err != nil {
		t.Fatal(err)
	}
	// An event needing i1 must wait.
	done := make(chan error, 1)
	go func() {
		_, err := w.rt.Submit(w.p1, "transfer", w.i1, w.i2, 1)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("event completed while context was migration-locked")
	case <-time.After(30 * time.Millisecond):
	}
	release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	release() // idempotent
}

func TestRehostMovesPlacement(t *testing.T) {
	w := newTestWorld(t)
	servers := w.rt.Cluster().Servers()
	from, _ := w.rt.Directory().Locate(w.i1)
	var to cluster.ServerID
	for _, s := range servers {
		if s.ID() != from {
			to = s.ID()
			break
		}
	}
	release, err := w.rt.LockForMigration(w.i1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.rt.Rehost(w.i1, to); err != nil {
		t.Fatal(err)
	}
	release()
	got, _ := w.rt.Directory().Locate(w.i1)
	if got != to {
		t.Fatalf("host = %v; want %v", got, to)
	}
	// Events still work after the move.
	if _, err := w.rt.Submit(w.i1, "add", 1); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyContext(t *testing.T) {
	w := newTestWorld(t)
	i3, _ := w.rt.CreateContext("Item", w.p1)
	if err := w.rt.DestroyContext(i3); err != nil {
		t.Fatal(err)
	}
	if _, err := w.rt.Context(i3); !errors.Is(err, ErrUnknownContext) {
		t.Fatalf("err = %v; want ErrUnknownContext", err)
	}
}

func TestLatencyMetrics(t *testing.T) {
	w := newTestWorld(t)
	for i := 0; i < 10; i++ {
		if _, err := w.rt.Submit(w.room, "noop"); err != nil {
			t.Fatal(err)
		}
	}
	if w.rt.Completed.Value() < 10 {
		t.Fatalf("completed = %d", w.rt.Completed.Value())
	}
	if w.rt.RecentLatency() <= 0 {
		t.Fatal("recent latency should be positive")
	}
	if w.rt.Latency.Count() < 10 {
		t.Fatalf("latency samples = %d", w.rt.Latency.Count())
	}
}

func TestStateBytes(t *testing.T) {
	w := newTestWorld(t)
	c, _ := w.rt.Context(w.i1)
	if n := c.StateBytes(); n <= 0 {
		t.Fatalf("StateBytes = %d", n)
	}
}

func TestSubmitManyParallelRooms(t *testing.T) {
	// Events in disjoint rooms must run in parallel (the scalability
	// property): with 8 rooms × 20ms of real sleep, total must be far
	// below serial 8×20ms... per round.
	s := schema.New()
	room := s.MustDeclareClass("Room", nil)
	room.MustDeclareMethod("work", func(call schema.Call, args []any) (any, error) {
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < 8; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, _ := New(s, ownership.NewGraph(), cl, Config{})
	defer rt.Close()
	var rooms []ownership.ID
	for i := 0; i < 8; i++ {
		id, _ := rt.CreateContext("Room")
		rooms = append(rooms, id)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, id := range rooms {
		wg.Add(1)
		go func(id ownership.ID) {
			defer wg.Done()
			if _, err := rt.Submit(id, "work"); err != nil {
				t.Error(err)
			}
		}(id)
	}
	wg.Wait()
	if el := time.Since(start); el > 80*time.Millisecond {
		t.Fatalf("8 disjoint events took %v; want ≈20ms", el)
	}
}

func TestHopChargingAcrossServers(t *testing.T) {
	// With a 5ms network, an event whose dominator and target live on
	// different servers must take ≥ client→dom + dom→target hops.
	s := gameTestSchema(t)
	sim := transport.NewSim(transport.SimConfig{BaseLatency: 5 * time.Millisecond})
	cl := cluster.New(sim)
	s1 := cl.AddServer(cluster.M3Large)
	s2 := cl.AddServer(cluster.M3Large)
	rt, _ := New(s, ownership.NewGraph(), cl, DefaultConfig())
	defer rt.Close()
	room, _ := rt.CreateContextOn(s1.ID(), "Room")
	p1, _ := rt.CreateContextOn(s2.ID(), "Player", room)
	p2, _ := rt.CreateContextOn(s2.ID(), "Player", room)
	i1, _ := rt.CreateContextOn(s2.ID(), "Item", p1, p2)
	i2, _ := rt.CreateContextOn(s2.ID(), "Item", p1, p2)

	start := time.Now()
	if _, err := rt.Submit(p1, "transfer", i1, i2, 0); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	// client→room (5ms) + room→player (5ms) + reply (5ms) ≥ 15ms; item
	// calls are co-located with the player.
	if el < 15*time.Millisecond {
		t.Fatalf("event took %v; want ≥15ms of charged hops", el)
	}
	_ = fmt.Sprintf("%v", el)
}
