package core

import (
	"bytes"
	"encoding/gob"
	"sync"
	"sync/atomic"

	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// Context is the runtime representation of one context instance: its class,
// mutable state, activation lock, and execution bookkeeping.
type Context struct {
	id    ownership.ID
	class *schema.Class

	lock *eventLock
	// runMu serializes method executions on this context, providing the
	// paper's coarse-grained (context-access level) interleaving for
	// same-event asynchronous calls that race on a common child. Readonly
	// executions skip it.
	runMu sync.Mutex

	// stateMu guards state replacement during migration; handlers access
	// state under the activation lock, so no per-access locking is needed.
	stateMu sync.Mutex
	state   any

	migrating atomic.Bool
	version   atomic.Uint64 // bumped on every exclusive execution (test oracle)
}

// ID returns the context's ID.
func (c *Context) ID() ownership.ID { return c.id }

// Class returns the context's contextclass.
func (c *Context) Class() *schema.Class { return c.class }

// State returns the context's state object. Callers must hold the context's
// activation (handlers do) or otherwise own the context (setup code,
// migration with the context exclusively activated).
func (c *Context) State() any {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.state
}

// SetState replaces the context's state (migration state transfer).
func (c *Context) SetState(s any) {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	c.state = s
}

// Version returns the exclusive-execution counter (used by the
// serializability test oracle).
func (c *Context) Version() uint64 { return c.version.Load() }

// Sized lets application state declare its serialized size so migration
// transfer costs are charged realistically (e.g. the paper's 1 MB Room
// contexts) without always paying real serialization.
type Sized interface {
	StateBytes() int
}

// StateBytes estimates the serialized size of the context state for
// migration bandwidth accounting: a Sized state answers directly, otherwise
// gob encoding is measured, with a fixed fallback for unencodable state.
func (c *Context) StateBytes() int {
	const fallback = 1024
	st := c.State()
	if st == nil {
		return 64
	}
	if s, ok := st.(Sized); ok {
		return s.StateBytes()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fallback
	}
	return buf.Len()
}
