// Package cloudstore provides the configurable cloud storage system the
// paper's eManager depends on (§ 5): the context mapping and ownership
// network live here, migration steps are journaled here for eManager
// fail-over, and the snapshot API (§ 5.3) writes checkpoints here (the
// paper names ZooKeeper and Amazon S3 for these roles).
//
// The store is a versioned key-value store with compare-and-swap, per-
// operation simulated latency, and injectable unavailability so tests can
// exercise eManager crash/recovery paths.
package cloudstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrNotFound is returned when a key does not exist.
	ErrNotFound = errors.New("cloudstore: key not found")
	// ErrVersionMismatch is returned by CAS when the expected version is
	// stale.
	ErrVersionMismatch = errors.New("cloudstore: version mismatch")
	// ErrUnavailable is returned while the store is failed.
	ErrUnavailable = errors.New("cloudstore: unavailable")
)

// API is the operation surface cloud-store clients depend on. The in-memory
// Store implements it directly; in multi-process deployments the node
// runtime's RemoteStore implements it over the transport mesh, so the
// eManager and migration engine journal into one authoritative store no
// matter which process they run in.
type API interface {
	// Get returns the value and version stored at key.
	Get(key string) ([]byte, uint64, error)
	// Put unconditionally stores value at key and returns the new version.
	Put(key string, value []byte) (uint64, error)
	// PutBatch stores every entry in one charged round trip.
	PutBatch(entries map[string][]byte) (uint64, error)
	// CreateBatch atomically creates every entry in one charged round trip,
	// failing with ErrVersionMismatch — and writing nothing — if any key
	// already exists. It is the batch analogue of CAS(key, 0, value).
	CreateBatch(entries map[string][]byte) (uint64, error)
	// CAS stores value only if the current version equals expect (0 means
	// "key must not exist").
	CAS(key string, expect uint64, value []byte) (uint64, error)
	// Delete removes key; deleting a missing key is an error.
	Delete(key string) error
	// DeleteBatch removes every key in one charged round trip; missing
	// keys are ignored (batch pruning is best-effort by design).
	DeleteBatch(keys []string) error
	// List returns the keys with the given prefix in sorted order.
	List(prefix string) ([]string, error)
}

type entry struct {
	value   []byte
	version uint64
}

// Store is an in-memory versioned KV store.
type Store struct {
	latency time.Duration

	mu   sync.Mutex
	data map[string]entry
	next uint64

	down   atomic.Bool
	reads  atomic.Uint64
	writes atomic.Uint64
}

var _ API = (*Store)(nil)

// Option configures a Store.
type Option func(*Store)

// WithLatency charges the given latency on every operation, simulating a
// remote storage service.
func WithLatency(d time.Duration) Option {
	return func(s *Store) { s.latency = d }
}

// New returns an empty store.
func New(opts ...Option) *Store {
	s := &Store{data: make(map[string]entry), next: 1}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

func (s *Store) charge() error {
	if s.down.Load() {
		return ErrUnavailable
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	if s.down.Load() {
		return ErrUnavailable
	}
	return nil
}

// Get returns the value and version stored at key.
func (s *Store) Get(key string) ([]byte, uint64, error) {
	if err := s.charge(); err != nil {
		return nil, 0, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	if !ok {
		return nil, 0, fmt.Errorf("%q: %w", key, ErrNotFound)
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, e.version, nil
}

// Put unconditionally stores value at key and returns the new version.
func (s *Store) Put(key string, value []byte) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.next
	s.next++
	stored := make([]byte, len(value))
	copy(stored, value)
	s.data[key] = entry{value: stored, version: v}
	return v, nil
}

// PutBatch stores every entry in one round trip: the per-operation latency
// is charged once for the whole batch (one RPC to the storage service), and
// the writes apply atomically under the store lock. Each key still receives
// its own fresh version, assigned in sorted key order so batches are
// deterministic. Returns the highest version assigned.
func (s *Store) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	// One batched RPC, not len(entries) operations.
	s.writes.Add(1)
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.mu.Lock()
	defer s.mu.Unlock()
	var last uint64
	for _, k := range keys {
		v := s.next
		s.next++
		value := entries[k]
		stored := make([]byte, len(value))
		copy(stored, value)
		s.data[k] = entry{value: stored, version: v}
		last = v
	}
	return last, nil
}

// CreateBatch atomically creates every entry — one charged write — failing
// with ErrVersionMismatch (and writing nothing) if any key already exists.
// Concurrent writers racing to create the same generation of keys collide on
// the first common key instead of silently overwriting each other, which is
// what makes CAS-style read-recompute-retry loops possible over batches.
func (s *Store) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	// One batched RPC, like PutBatch.
	s.writes.Add(1)
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		if e, ok := s.data[k]; ok {
			return 0, fmt.Errorf("%q exists at v%d: %w", k, e.version, ErrVersionMismatch)
		}
	}
	var last uint64
	for _, k := range keys {
		v := s.next
		s.next++
		value := entries[k]
		stored := make([]byte, len(value))
		copy(stored, value)
		s.data[k] = entry{value: stored, version: v}
		last = v
	}
	return last, nil
}

// CAS stores value at key only if the current version equals expect.
// expect == 0 means "key must not exist" (create).
func (s *Store) CAS(key string, expect uint64, value []byte) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	switch {
	case expect == 0 && ok:
		return 0, fmt.Errorf("%q exists at v%d: %w", key, e.version, ErrVersionMismatch)
	case expect != 0 && (!ok || e.version != expect):
		return 0, fmt.Errorf("%q: have v%d want v%d: %w", key, e.version, expect, ErrVersionMismatch)
	}
	v := s.next
	s.next++
	stored := make([]byte, len(value))
	copy(stored, value)
	s.data[key] = entry{value: stored, version: v}
	return v, nil
}

// Delete removes key. Deleting a missing key is an error so callers notice
// protocol bugs.
func (s *Store) Delete(key string) error {
	if err := s.charge(); err != nil {
		return err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[key]; !ok {
		return fmt.Errorf("%q: %w", key, ErrNotFound)
	}
	delete(s.data, key)
	return nil
}

// DeleteBatch removes every key in one round trip: one charged write, with
// the removals applied atomically under the store lock. Missing keys are
// ignored — callers use it to prune superseded entries (e.g. old checkpoint
// sequences) and a concurrent pruner is not a protocol error.
func (s *Store) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	if err := s.charge(); err != nil {
		return err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.data, k)
	}
	return nil
}

// List returns the keys with the given prefix in sorted order.
func (s *Store) List(prefix string) ([]string, error) {
	if err := s.charge(); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Fail makes the store return ErrUnavailable until Recover is called.
func (s *Store) Fail() { s.down.Store(true) }

// Recover restores availability after Fail.
func (s *Store) Recover() { s.down.Store(false) }

// Stats reports operation counts (for tests and the bench harness).
func (s *Store) Stats() (reads, writes uint64) {
	return s.reads.Load(), s.writes.Load()
}
