// Package cloudstore provides the configurable cloud storage system the
// paper's eManager depends on (§ 5): the context mapping and ownership
// network live here, migration steps are journaled here for eManager
// fail-over, and the snapshot API (§ 5.3) writes checkpoints here (the
// paper names ZooKeeper and Amazon S3 for these roles).
//
// The store is a versioned key-value store with compare-and-swap, per-
// operation simulated latency, and injectable unavailability so tests can
// exercise eManager crash/recovery paths.
package cloudstore

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrNotFound is returned when a key does not exist.
	ErrNotFound = errors.New("cloudstore: key not found")
	// ErrVersionMismatch is returned by CAS when the expected version is
	// stale.
	ErrVersionMismatch = errors.New("cloudstore: version mismatch")
	// ErrUnavailable is returned while the store is failed.
	ErrUnavailable = errors.New("cloudstore: unavailable")
	// ErrFenced is returned by replica operations carrying a fence epoch
	// older than the partition's accepted epoch: the caller is acting for a
	// deposed primary and must refresh its view of the replica set.
	ErrFenced = errors.New("cloudstore: fenced by a newer epoch")
)

// API is the operation surface cloud-store clients depend on. The in-memory
// Store implements it directly; in multi-process deployments the node
// runtime's RemoteStore implements it over the transport mesh, so the
// eManager and migration engine journal into one authoritative store no
// matter which process they run in.
type API interface {
	// Get returns the value and version stored at key.
	Get(key string) ([]byte, uint64, error)
	// Put unconditionally stores value at key and returns the new version.
	Put(key string, value []byte) (uint64, error)
	// PutBatch stores every entry in one charged round trip.
	PutBatch(entries map[string][]byte) (uint64, error)
	// CreateBatch atomically creates every entry in one charged round trip,
	// failing with ErrVersionMismatch — and writing nothing — if any key
	// already exists. It is the batch analogue of CAS(key, 0, value).
	CreateBatch(entries map[string][]byte) (uint64, error)
	// CAS stores value only if the current version equals expect (0 means
	// "key must not exist").
	CAS(key string, expect uint64, value []byte) (uint64, error)
	// Delete removes key; deleting a missing key is an error.
	Delete(key string) error
	// DeleteBatch removes every key in one charged round trip; missing
	// keys are ignored (batch pruning is best-effort by design).
	DeleteBatch(keys []string) error
	// List returns the keys with the given prefix in sorted order.
	List(prefix string) ([]string, error)
}

type entry struct {
	value   []byte
	version uint64
}

// Store is an in-memory versioned KV store.
type Store struct {
	latency       time.Duration
	serialLatency time.Duration

	mu      sync.Mutex
	data    map[string]entry
	next    uint64
	fences  map[int]uint64    // partition → accepted fence epoch (replica role)
	applied map[string]uint64 // per-key high-water of replicated applies

	// persist, when set, is called under mu after every successful mutation
	// with the journal records describing it (the disk backend's hook).
	persist func([]jrec) error

	down   atomic.Bool
	reads  atomic.Uint64
	writes atomic.Uint64
}

var (
	_ API        = (*Store)(nil)
	_ ReplicaAPI = (*Store)(nil)
)

// Option configures a Store.
type Option func(*Store)

// WithLatency charges the given latency on every operation, simulating a
// remote storage service.
func WithLatency(d time.Duration) Option {
	return func(s *Store) { s.latency = d }
}

// WithSerialLatency charges the given latency *while holding the store lock*,
// modeling a store node with a bounded serial service rate (one op at a time
// at 1/d ops per second) rather than an infinitely parallel service. The
// store bench uses it to make the single-store throughput ceiling — the thing
// partitioning removes — observable on a small host.
func WithSerialLatency(d time.Duration) Option {
	return func(s *Store) { s.serialLatency = d }
}

// New returns an empty store.
func New(opts ...Option) *Store {
	s := &Store{
		data:    make(map[string]entry),
		next:    1,
		fences:  make(map[int]uint64),
		applied: make(map[string]uint64),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

func (s *Store) charge() error {
	if s.down.Load() {
		return ErrUnavailable
	}
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	if s.down.Load() {
		return ErrUnavailable
	}
	return nil
}

// serviceLocked charges the serial service latency. Callers hold mu.
func (s *Store) serviceLocked() {
	if s.serialLatency > 0 {
		time.Sleep(s.serialLatency)
	}
}

// commitLocked journals the mutation records when a persist hook is attached.
// Callers hold mu, so journal order equals apply order.
func (s *Store) commitLocked(recs []jrec) error {
	if s.persist == nil {
		return nil
	}
	return s.persist(recs)
}

// fenceGateLocked is the partition fence check shared by every fenced
// operation: an epoch below the accepted fence is refused with ErrFenced.
// When advance is set (writes, Apply) a newer epoch raises the fence and the
// advance is returned as a journal record so it persists exactly like a
// promoted one — a restarted replica must refuse deposed epochs no matter
// how it learned the current one. Reads pass advance=false: they never
// mutate the fence. Callers hold mu.
func (s *Store) fenceGateLocked(part int, epoch uint64, advance bool) ([]jrec, error) {
	cur := s.fences[part]
	if epoch < cur {
		return nil, fmt.Errorf("partition %d: epoch %d < fence %d: %w", part, epoch, cur, ErrFenced)
	}
	if advance && epoch > cur {
		s.fences[part] = epoch
		return []jrec{{Op: jFence, Key: strconv.Itoa(part), Ver: epoch}}, nil
	}
	return nil, nil
}

// --- operation cores -------------------------------------------------------
// Each core assumes mu is held and the serial service latency has been
// charged; it mutates state and returns the journal records describing the
// mutation. The unfenced API ops and the fenced replica ops are both thin
// wrappers over these.

func (s *Store) getLocked(key string) ([]byte, uint64, error) {
	e, ok := s.data[key]
	if !ok {
		return nil, 0, fmt.Errorf("%q: %w", key, ErrNotFound)
	}
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, e.version, nil
}

func (s *Store) listLocked(prefix string) []string {
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func (s *Store) setLocked(key string, value []byte) jrec {
	v := s.next
	s.next++
	stored := make([]byte, len(value))
	copy(stored, value)
	s.data[key] = entry{value: stored, version: v}
	return jrec{Op: jSet, Key: key, Val: stored, Ver: v}
}

func sortedKeys(entries map[string][]byte) []string {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// putBatchLocked assigns each key its own fresh version in sorted key order
// so batches are deterministic; returns the highest version assigned.
func (s *Store) putBatchLocked(entries map[string][]byte) (uint64, []jrec) {
	keys := sortedKeys(entries)
	recs := make([]jrec, 0, len(keys))
	var last uint64
	for _, k := range keys {
		rec := s.setLocked(k, entries[k])
		recs = append(recs, rec)
		last = rec.Ver
	}
	return last, recs
}

func (s *Store) createBatchLocked(entries map[string][]byte) (uint64, []jrec, error) {
	for _, k := range sortedKeys(entries) {
		if e, ok := s.data[k]; ok {
			return 0, nil, fmt.Errorf("%q exists at v%d: %w", k, e.version, ErrVersionMismatch)
		}
	}
	last, recs := s.putBatchLocked(entries)
	return last, recs, nil
}

func (s *Store) casLocked(key string, expect uint64, value []byte) (uint64, []jrec, error) {
	e, ok := s.data[key]
	switch {
	case expect == 0 && ok:
		return 0, nil, fmt.Errorf("%q exists at v%d: %w", key, e.version, ErrVersionMismatch)
	case expect != 0 && !ok:
		// Distinct from a live-version conflict: the key does not exist at
		// all. Still ErrVersionMismatch-wrapped so Retry treats both the
		// same way, but logs and failover diagnostics can tell a pruned key
		// from a racing writer.
		return 0, nil, fmt.Errorf("%q: missing, want v%d: %w", key, expect, ErrVersionMismatch)
	case expect != 0 && e.version != expect:
		return 0, nil, fmt.Errorf("%q: have v%d want v%d: %w", key, e.version, expect, ErrVersionMismatch)
	}
	rec := s.setLocked(key, value)
	return rec.Ver, []jrec{rec}, nil
}

// deleteLocked removes key, returning the tombstone version assigned to the
// removal. Deleting a missing key is an error so callers notice protocol
// bugs.
func (s *Store) deleteLocked(key string) (uint64, []jrec, error) {
	if _, ok := s.data[key]; !ok {
		return 0, nil, fmt.Errorf("%q: %w", key, ErrNotFound)
	}
	v := s.next
	s.next++
	delete(s.data, key)
	return v, []jrec{{Op: jDel, Key: key, Ver: v}}, nil
}

// deleteBatchLocked removes every key; missing keys are ignored (batch
// pruning is best-effort by design) but still consume one version each in
// sorted key order, so a replicating caller can reconstruct every key's
// tombstone version from the returned high-water mark.
func (s *Store) deleteBatchLocked(keys []string) (uint64, []jrec) {
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	recs := make([]jrec, 0, len(sorted))
	var last uint64
	for _, k := range sorted {
		v := s.next
		s.next++
		delete(s.data, k)
		recs = append(recs, jrec{Op: jDel, Key: k, Ver: v})
		last = v
	}
	return last, recs
}

// --- unfenced API ----------------------------------------------------------

// Get returns the value and version stored at key.
func (s *Store) Get(key string) ([]byte, uint64, error) {
	if err := s.charge(); err != nil {
		return nil, 0, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	return s.getLocked(key)
}

// Put unconditionally stores value at key and returns the new version.
func (s *Store) Put(key string, value []byte) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	rec := s.setLocked(key, value)
	if err := s.commitLocked([]jrec{rec}); err != nil {
		return 0, err
	}
	return rec.Ver, nil
}

// PutBatch stores every entry in one round trip: the per-operation latency
// is charged once for the whole batch (one RPC to the storage service), and
// the writes apply atomically under the store lock. Each key still receives
// its own fresh version, assigned in sorted key order so batches are
// deterministic. Returns the highest version assigned.
func (s *Store) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	// One batched RPC, not len(entries) operations.
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	last, recs := s.putBatchLocked(entries)
	if err := s.commitLocked(recs); err != nil {
		return 0, err
	}
	return last, nil
}

// CreateBatch atomically creates every entry — one charged write — failing
// with ErrVersionMismatch (and writing nothing) if any key already exists.
// Concurrent writers racing to create the same generation of keys collide on
// the first common key instead of silently overwriting each other, which is
// what makes CAS-style read-recompute-retry loops possible over batches.
func (s *Store) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	// One batched RPC, like PutBatch.
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	last, recs, err := s.createBatchLocked(entries)
	if err != nil {
		return 0, err
	}
	if err := s.commitLocked(recs); err != nil {
		return 0, err
	}
	return last, nil
}

// CAS stores value at key only if the current version equals expect.
// expect == 0 means "key must not exist" (create).
func (s *Store) CAS(key string, expect uint64, value []byte) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	v, recs, err := s.casLocked(key, expect, value)
	if err != nil {
		return 0, err
	}
	if err := s.commitLocked(recs); err != nil {
		return 0, err
	}
	return v, nil
}

// Delete removes key. Deleting a missing key is an error so callers notice
// protocol bugs.
func (s *Store) Delete(key string) error {
	if err := s.charge(); err != nil {
		return err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	_, recs, err := s.deleteLocked(key)
	if err != nil {
		return err
	}
	return s.commitLocked(recs)
}

// DeleteBatch removes every key in one round trip: one charged write, with
// the removals applied atomically under the store lock. Missing keys are
// ignored — callers use it to prune superseded entries (e.g. old checkpoint
// sequences) and a concurrent pruner is not a protocol error.
func (s *Store) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	if err := s.charge(); err != nil {
		return err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	_, recs := s.deleteBatchLocked(keys)
	return s.commitLocked(recs)
}

// List returns the keys with the given prefix in sorted order.
func (s *Store) List(prefix string) ([]string, error) {
	if err := s.charge(); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	return s.listLocked(prefix), nil
}

// --- fenced replica ops ----------------------------------------------------
// The replicated client's surface: every op carries the partition and the
// fence epoch of the caller's view, and the fence gate runs under the same
// lock acquisition as the operation itself — there is no window where a
// newer fence can land between the check and the mutation.

// GetF is Get under the partition fence: a replica that has accepted a
// newer epoch refuses the read with ErrFenced instead of serving a view
// that may be missing writes acknowledged through a newer primary.
func (s *Store) GetF(part int, epoch uint64, key string) ([]byte, uint64, error) {
	if err := s.charge(); err != nil {
		return nil, 0, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	if _, err := s.fenceGateLocked(part, epoch, false); err != nil {
		return nil, 0, err
	}
	return s.getLocked(key)
}

// ListF is List under the partition fence.
func (s *Store) ListF(part int, epoch uint64, prefix string) ([]string, error) {
	if err := s.charge(); err != nil {
		return nil, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	if _, err := s.fenceGateLocked(part, epoch, false); err != nil {
		return nil, err
	}
	return s.listLocked(prefix), nil
}

// PutF is Put under the partition fence.
func (s *Store) PutF(part int, epoch uint64, key string, value []byte) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	frecs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return 0, err
	}
	rec := s.setLocked(key, value)
	if err := s.commitLocked(append(frecs, rec)); err != nil {
		return 0, err
	}
	return rec.Ver, nil
}

// PutBatchF is PutBatch under the partition fence.
func (s *Store) PutBatchF(part int, epoch uint64, entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	frecs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return 0, err
	}
	last, recs := s.putBatchLocked(entries)
	if err := s.commitLocked(append(frecs, recs...)); err != nil {
		return 0, err
	}
	return last, nil
}

// CreateBatchF is CreateBatch under the partition fence.
func (s *Store) CreateBatchF(part int, epoch uint64, entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	frecs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return 0, err
	}
	last, recs, err := s.createBatchLocked(entries)
	if err != nil {
		return 0, err
	}
	if err := s.commitLocked(append(frecs, recs...)); err != nil {
		return 0, err
	}
	return last, nil
}

// CASF is CAS under the partition fence.
func (s *Store) CASF(part int, epoch uint64, key string, expect uint64, value []byte) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	frecs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return 0, err
	}
	v, recs, err := s.casLocked(key, expect, value)
	if err != nil {
		return 0, err
	}
	if err := s.commitLocked(append(frecs, recs...)); err != nil {
		return 0, err
	}
	return v, nil
}

// DeleteF is Delete under the partition fence, returning the tombstone
// version assigned to the removal so a replicating client can forward the
// delete to followers with ordering information.
func (s *Store) DeleteF(part int, epoch uint64, key string) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	frecs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return 0, err
	}
	v, recs, err := s.deleteLocked(key)
	if err != nil {
		return 0, err
	}
	if err := s.commitLocked(append(frecs, recs...)); err != nil {
		return 0, err
	}
	return v, nil
}

// DeleteBatchF is DeleteBatch under the partition fence, returning the
// highest tombstone version assigned. Every key — present or missing —
// consumes one version in sorted key order, so the caller can reconstruct
// each key's tombstone version from the returned high-water mark exactly as
// PutBatch callers do.
func (s *Store) DeleteBatchF(part int, epoch uint64, keys []string) (uint64, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	frecs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return 0, err
	}
	last, recs := s.deleteBatchLocked(keys)
	if err := s.commitLocked(append(frecs, recs...)); err != nil {
		return 0, err
	}
	return last, nil
}

// Apply installs a replicated commit on a follower. The commit carries the
// fence epoch of the client's view of partition part: an epoch older than the
// highest this replica has accepted is refused with ErrFenced — that is the
// fence that stops a deposed primary's writes from being acknowledged. A
// newer epoch raises the fence and is journaled like a promoted one, so a
// restarted replica keeps refusing deposed epochs it learned about only
// through replication. Within an accepted epoch, sets and deletes apply only
// if their primary-assigned version is newer than the key's applied
// high-water mark, so replayed or reordered commits converge to the
// primary's order.
func (s *Store) Apply(part int, epoch uint64, c Commit) error {
	if err := s.charge(); err != nil {
		return err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	recs, err := s.fenceGateLocked(part, epoch, true)
	if err != nil {
		return err
	}
	for _, kv := range c.Sets {
		if kv.Ver <= s.applied[kv.Key] {
			continue
		}
		s.applied[kv.Key] = kv.Ver
		stored := make([]byte, len(kv.Val))
		copy(stored, kv.Val)
		s.data[kv.Key] = entry{value: stored, version: kv.Ver}
		recs = append(recs, jrec{Op: jSet, Key: kv.Key, Val: stored, Ver: kv.Ver})
		if kv.Ver >= s.next {
			s.next = kv.Ver + 1
		}
	}
	for _, kd := range c.Dels {
		if kd.Ver <= s.applied[kd.Key] {
			continue
		}
		s.applied[kd.Key] = kd.Ver
		delete(s.data, kd.Key)
		recs = append(recs, jrec{Op: jDel, Key: kd.Key, Ver: kd.Ver})
		if kd.Ver >= s.next {
			s.next = kd.Ver + 1
		}
	}
	return s.commitLocked(recs)
}

// Promote advances partition part's fence epoch to epoch. It is a pure fence
// advance: primaryship is derived from the epoch by the replica-list
// convention (see Replicated), so promoting an epoch onto a replica does not
// make that replica the primary — failover spreads the same epoch across the
// set until a majority holds it. A claim older than the current fence is
// refused with ErrFenced (someone promoted past us); an equal claim is
// idempotent. Returns the fence in force after the call.
func (s *Store) Promote(part int, epoch uint64) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.writes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serviceLocked()
	cur := s.fences[part]
	if epoch < cur {
		return cur, fmt.Errorf("partition %d: promote epoch %d < fence %d: %w", part, epoch, cur, ErrFenced)
	}
	if epoch > cur {
		s.fences[part] = epoch
		if err := s.commitLocked([]jrec{{Op: jFence, Key: strconv.Itoa(part), Ver: epoch}}); err != nil {
			return 0, err
		}
	}
	return s.fences[part], nil
}

// FenceEpoch reports the highest fence epoch this replica has accepted for
// partition part (zero if it has never seen one).
func (s *Store) FenceEpoch(part int) (uint64, error) {
	if err := s.charge(); err != nil {
		return 0, err
	}
	s.reads.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fences[part], nil
}

// Close releases backend resources. The in-memory store holds none.
func (s *Store) Close() error { return nil }

// Fail makes the store return ErrUnavailable until Recover is called.
func (s *Store) Fail() { s.down.Store(true) }

// Recover restores availability after Fail.
func (s *Store) Recover() { s.down.Store(false) }

// Stats reports operation counts (for tests and the bench harness).
func (s *Store) Stats() (reads, writes uint64) {
	return s.reads.Load(), s.writes.Load()
}
