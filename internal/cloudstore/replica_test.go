package cloudstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Satellite bugfix pin: CAS on a missing key with expect != 0 must not
// masquerade as a live-version conflict ("have v0") — the message says the
// key is missing, while the error still unwraps to ErrVersionMismatch so
// Retry semantics are unchanged.
func TestCASMissingKeyDistinctFromConflict(t *testing.T) {
	s := New()
	_, err := s.CAS("ghost", 7, []byte("x"))
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v; want ErrVersionMismatch", err)
	}
	if strings.Contains(err.Error(), "v0") {
		t.Fatalf("missing-key CAS error %q formats phantom version v0", err)
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing-key CAS error %q does not say the key is missing", err)
	}

	// Real conflict keeps the have/want shape.
	v, _ := s.Put("live", []byte("a"))
	_, err = s.CAS("live", v+100, []byte("b"))
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v; want ErrVersionMismatch", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("have v%d", v)) {
		t.Fatalf("conflict error %q lost the have/want diagnostics", err)
	}
}

func TestReplicatedWritesReachFollower(t *testing.T) {
	prim, fol := New(), New()
	r := NewReplicated(0, prim, fol)

	v, err := r.Put("map/1", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CAS("map/1", v, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PutBatch(map[string][]byte{"map/2": []byte("x"), "map/3": []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateBatch(map[string][]byte{"map/4": []byte("z")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("map/3"); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteBatch([]string{"map/4", "map/ghost"}); err != nil {
		t.Fatal(err)
	}

	// The follower must hold exactly the primary's surviving state, with the
	// primary's versions.
	for _, key := range []string{"map/1", "map/2"} {
		pv, pver, err := prim.Get(key)
		if err != nil {
			t.Fatalf("primary %s: %v", key, err)
		}
		fv, fver, err := fol.Get(key)
		if err != nil {
			t.Fatalf("follower %s: %v", key, err)
		}
		if string(pv) != string(fv) || pver != fver {
			t.Fatalf("%s: primary %q v%d, follower %q v%d", key, pv, pver, fv, fver)
		}
	}
	for _, key := range []string{"map/3", "map/4"} {
		if _, _, err := fol.Get(key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("follower still has deleted %s (err=%v)", key, err)
		}
	}
}

func TestReplicatedSemanticErrorsPassThrough(t *testing.T) {
	r := NewReplicated(0, New(), New())
	if _, _, err := r.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get err = %v; want ErrNotFound", err)
	}
	if _, err := r.CAS("ghost", 3, nil); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("CAS err = %v; want ErrVersionMismatch", err)
	}
	if err := r.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete err = %v; want ErrNotFound", err)
	}
	// No spurious failover happened while surfacing them.
	if e, p := r.View(); e != 1 || p != 0 {
		t.Fatalf("view moved to epoch %d primary %d on semantic errors", e, p)
	}
}

func TestReplicatedFailover(t *testing.T) {
	prim, fol, fol2 := New(), New(), New()
	r := NewReplicated(0, prim, fol, fol2)

	if _, err := r.Put("wal/x", []byte("before")); err != nil {
		t.Fatal(err)
	}
	prim.Fail()

	v, err := r.Put("wal/x", []byte("after"))
	if err != nil {
		t.Fatalf("write did not survive primary loss: %v", err)
	}
	if e, p := r.View(); e != 2 || p != 1 {
		t.Fatalf("view = epoch %d primary %d; want epoch 2 primary 1", e, p)
	}
	got, ver, err := fol.Get("wal/x")
	if err != nil || string(got) != "after" || ver != v {
		t.Fatalf("promoted follower has %q v%d (err=%v); want after v%d", got, ver, err, v)
	}
	// The post-failover write reached a majority: the surviving follower
	// holds it too.
	got3, _, err := fol2.Get("wal/x")
	if err != nil || string(got3) != "after" {
		t.Fatalf("surviving follower has %q (err=%v); want after", got3, err)
	}
	// Reads route to the promoted follower too.
	got2, _, err := r.Get("wal/x")
	if err != nil || string(got2) != "after" {
		t.Fatalf("read after failover: %q, %v", got2, err)
	}
}

// Regression pin for the acked-but-divergent-write hole: a write applied on
// the primary but on no follower must NOT be acknowledged — with every
// follower unreachable there is no majority, so the client gets
// ErrUnavailable instead of an ack that a failover could silently lose.
func TestReplicatedNoAckWithoutFollowerQuorum(t *testing.T) {
	prim, f1, f2 := New(), New(), New()
	r := NewReplicated(0, prim, f1, f2)

	// One follower down: primary + surviving follower is still a majority
	// of three, so writes keep flowing.
	f2.Fail()
	if _, err := r.Put("q/a", []byte("v")); err != nil {
		t.Fatalf("write with 2/3 replicas up: %v", err)
	}
	if got, _, err := f1.Get("q/a"); err != nil || string(got) != "v" {
		t.Fatalf("surviving follower has %q (err=%v); want v", got, err)
	}

	// Both followers down: the primary alone is a minority. The write must
	// fail typed, and failover must also refuse (no majority can hold the
	// new fence either).
	f1.Fail()
	if _, err := r.Put("q/b", []byte("v")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("minority write err = %v; want ErrUnavailable", err)
	}
}

// Fenced reads: a read carrying a deposed epoch is refused (the replica has
// accepted a newer fence), a read at the accepted epoch is served, and a
// read at a newer epoch is served without advancing the fence — only writes
// and promotions move it.
func TestFencedReadsRefuseStaleEpoch(t *testing.T) {
	s := New()
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetF(0, 2, "k"); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale GetF err = %v; want ErrFenced", err)
	}
	if _, err := s.ListF(0, 2, ""); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale ListF err = %v; want ErrFenced", err)
	}
	if got, _, err := s.GetF(0, 3, "k"); err != nil || string(got) != "v" {
		t.Fatalf("current-epoch GetF = %q, %v", got, err)
	}
	if _, _, err := s.GetF(0, 9, "k"); err != nil {
		t.Fatalf("newer-epoch GetF err = %v; reads must not require the fence to have propagated", err)
	}
	if e, _ := s.FenceEpoch(0); e != 3 {
		t.Fatalf("fence = %d after newer-epoch read; reads must not advance it", e)
	}
}

// Regression pin for the fence: a client still acting for a deposed primary
// must not get its writes acknowledged — the follower's fence refuses the
// stale epoch, and the stale client recovers by refreshing its view.
func TestReplicatedStalePrimaryIsFenced(t *testing.T) {
	prim, fol := New(), New()
	fresh := NewReplicated(0, prim, fol)
	stale := NewReplicated(0, prim, fol)

	if _, err := stale.Put("map/1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// `fresh` deposes the primary (as if it observed a primary failure).
	if _, err := fol.Promote(0, 2); err != nil {
		t.Fatal(err)
	}
	fresh.adopt(2)
	if _, err := fresh.Put("map/1", []byte("fresh")); err != nil {
		t.Fatal(err)
	}

	// The stale client still believes epoch 1 / primary 0. Its raw fenced
	// apply must be refused outright…
	err := fol.Apply(0, 1, Commit{Sets: []KV{{Key: "map/1", Val: []byte("stale"), Ver: 99}}})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("stale apply err = %v; want ErrFenced", err)
	}
	if got, _, _ := fol.Get("map/1"); string(got) != "fresh" {
		t.Fatalf("fenced apply mutated the follower: %q", got)
	}

	// …and its full write path must chase the fence to the new primary and
	// only then be acknowledged.
	if _, err := stale.Put("map/1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if e, p := stale.View(); e != 2 || p != 1 {
		t.Fatalf("stale client stuck at epoch %d primary %d", e, p)
	}
	got, _, err := fol.Get("map/1")
	if err != nil || string(got) != "v2" {
		t.Fatalf("new primary has %q (err=%v); want v2", got, err)
	}
}

func TestReplicatedPromoteRefusesRegression(t *testing.T) {
	s := New()
	if _, err := s.Promote(0, 5); err != nil {
		t.Fatal(err)
	}
	cur, err := s.Promote(0, 3)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("backwards promote err = %v; want ErrFenced", err)
	}
	if cur != 5 {
		t.Fatalf("backwards promote reported fence %d; want 5", cur)
	}
	// Idempotent re-claim of the current epoch is fine.
	if cur, err := s.Promote(0, 5); err != nil || cur != 5 {
		t.Fatalf("re-promote = %d, %v", cur, err)
	}
	// Fences are per partition.
	if e, _ := s.FenceEpoch(1); e != 0 {
		t.Fatalf("partition 1 fence = %d; want 0", e)
	}
}

func TestReplicatedApplyIdempotentAndOrdered(t *testing.T) {
	fol := New()
	c1 := Commit{Sets: []KV{{Key: "a", Val: []byte("new"), Ver: 10}}}
	c0 := Commit{Sets: []KV{{Key: "a", Val: []byte("old"), Ver: 9}}}
	if err := fol.Apply(0, 1, c1); err != nil {
		t.Fatal(err)
	}
	// A late/reordered older commit must not regress the key.
	if err := fol.Apply(0, 1, c0); err != nil {
		t.Fatal(err)
	}
	// A duplicate of the newest must be a no-op.
	if err := fol.Apply(0, 1, c1); err != nil {
		t.Fatal(err)
	}
	got, ver, err := fol.Get("a")
	if err != nil || string(got) != "new" || ver != 10 {
		t.Fatalf("follower a = %q v%d (err=%v); want new v10", got, ver, err)
	}
	// A tombstone newer than the set wins; an older one would not.
	if err := fol.Apply(0, 1, Commit{Dels: []KD{{Key: "a", Ver: 11}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fol.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete did not apply: %v", err)
	}
	// Fresh versions on the follower must allocate above applied versions.
	v, _ := fol.Put("b", nil)
	if v <= 11 {
		t.Fatalf("follower allocated v%d under the applied high-water 11", v)
	}
}

func TestReplicatedAllReplicasDown(t *testing.T) {
	prim, fol := New(), New()
	r := NewReplicated(0, prim, fol)
	prim.Fail()
	fol.Fail()
	if _, err := r.Put("k", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v; want ErrUnavailable", err)
	}
}

func TestReplicatedConcurrentClientsConvergeThroughFailover(t *testing.T) {
	prim, fol, fol2 := New(), New(), New()
	const clients, rounds = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		r := NewReplicated(0, prim, fol, fol2)
		wg.Add(1)
		go func(c int, r *Replicated) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := r.Put(fmt.Sprintf("k/%d", c), []byte(fmt.Sprintf("%d", i))); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", c, i, err)
					return
				}
			}
		}(c, r)
	}
	// Depose the initial primary mid-traffic.
	prim.Fail()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every client's final value must be on the promoted follower.
	for c := 0; c < clients; c++ {
		got, _, err := fol.Get(fmt.Sprintf("k/%d", c))
		if err != nil || string(got) != fmt.Sprintf("%d", rounds-1) {
			t.Fatalf("client %d final = %q (err=%v)", c, got, err)
		}
	}
}

func TestPartitionedRoutesPrefixGroupsTogether(t *testing.T) {
	a, b := New(), New()
	p := NewPartitioned(a, b)
	// All members of one prefix group land on one partition.
	first := p.PartitionOf("replog/rec/00000000000000000001")
	for i := 2; i < 40; i++ {
		k := fmt.Sprintf("replog/rec/%020d", i)
		if p.PartitionOf(k) != first {
			t.Fatalf("%s routed off-partition from its prefix group", k)
		}
	}
	// And the partitions genuinely split the keyspace: different groups
	// reach different stores.
	seen := map[int]bool{}
	for _, g := range []string{"map/1", "replog/rec/1", "snapshot/7/1", "wal/migration/3", "replog/head"} {
		seen[p.PartitionOf(g)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("all sample groups hashed to one partition; routing is degenerate")
	}
}

func TestPartitionedOpsAndListMerge(t *testing.T) {
	a, b := New(), New()
	p := NewPartitioned(a, b)
	keys := []string{"map/1", "snapshot/9/3", "replog/rec/5", "wal/migration/2"}
	for _, k := range keys {
		if _, err := p.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		got, _, err := p.Get(k)
		if err != nil || string(got) != k {
			t.Fatalf("%s: %q, %v", k, got, err)
		}
	}
	all, err := p.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(keys) {
		t.Fatalf("List merged %d keys; want %d (%v)", len(all), len(keys), all)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("merged List not sorted: %v", all)
		}
	}
	// Data is actually sharded, not mirrored.
	ra, _ := a.List("")
	rb, _ := b.List("")
	if len(ra) == 0 || len(rb) == 0 || len(ra)+len(rb) != len(keys) {
		t.Fatalf("shards hold %d + %d keys; want a real split of %d", len(ra), len(rb), len(keys))
	}
}

func TestPartitionedCreateBatchRollsBackOnCollision(t *testing.T) {
	a, b := New(), New()
	p := NewPartitioned(a, b)
	// Find two keys on different partitions.
	k0, k1 := "map/1", ""
	for i := 2; i < 100; i++ {
		k := fmt.Sprintf("snapshot/%d/1", i)
		if p.PartitionOf(k) != p.PartitionOf(k0) {
			k1 = k
			break
		}
	}
	if k1 == "" {
		t.Fatal("could not find keys on two partitions")
	}
	// Pre-existing k1 makes the second sub-batch collide.
	if _, err := p.Put(k1, []byte("existing")); err != nil {
		t.Fatal(err)
	}
	_, err := p.CreateBatch(map[string][]byte{k0: []byte("x"), k1: []byte("y")})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v; want ErrVersionMismatch", err)
	}
	// The first sub-batch was rolled back, and the existing key survives.
	if _, _, err := p.Get(k0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rollback left %s behind (err=%v)", k0, err)
	}
	if got, _, _ := p.Get(k1); string(got) != "existing" {
		t.Fatalf("collision overwrote existing key: %q", got)
	}
	// A clean retry then succeeds.
	if _, err := p.CreateBatch(map[string][]byte{k0: []byte("x")}); err != nil {
		t.Fatal(err)
	}
}

func TestBackendRegistry(t *testing.T) {
	be, err := Open("memory")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Put("k", nil); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open("no-such-backend"); err == nil {
		t.Fatal("unknown backend must fail to open")
	}
	if _, err := Open("disk"); err == nil {
		t.Fatal("disk backend without a directory must fail to open")
	}
	names := Backends()
	want := map[string]bool{"memory": false, "disk": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, ok := range want {
		if !ok {
			t.Fatalf("backend %q not registered (have %v)", n, names)
		}
	}
}

func TestDiskBackendReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := d.Put("map/1", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PutBatch(map[string][]byte{"map/2": []byte("b"), "map/3": []byte("c")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("map/3"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Promote(4, 7); err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(4, 7, Commit{Sets: []KV{{Key: "map/9", Val: []byte("r"), Ver: 40}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ver, err := re.Get("map/1")
	if err != nil || string(got) != "a" || ver != v1 {
		t.Fatalf("map/1 = %q v%d (err=%v); want a v%d", got, ver, err, v1)
	}
	if _, _, err := re.Get("map/3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key survived restart: %v", err)
	}
	// The fence epoch survives restart — a restarted replica must keep
	// refusing deposed epochs.
	if e, _ := re.FenceEpoch(4); e != 7 {
		t.Fatalf("fence after restart = %d; want 7", e)
	}
	if err := re.Apply(4, 6, Commit{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale apply after restart err = %v; want ErrFenced", err)
	}
	// Replicated applies survive too, and version allocation stays above
	// the journal's high-water mark.
	if got, ver, err := re.Get("map/9"); err != nil || string(got) != "r" || ver != 40 {
		t.Fatalf("map/9 = %q v%d (err=%v); want r v40", got, ver, err)
	}
	if v, _ := re.Put("map/new", nil); v <= 40 {
		t.Fatalf("restart allocated v%d under journal high-water 40", v)
	}
}

// Regression pin: an Apply that outruns the replica's fence must journal the
// learned epoch — a restarted replica that forgot it would accept writes
// from a deposed primary.
func TestDiskBackendPersistsApplyLearnedFence(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	// No Promote ever ran here: the fence is learned from the commit stream.
	if err := d.Apply(2, 9, Commit{Sets: []KV{{Key: "a", Val: []byte("x"), Ver: 3}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if e, _ := re.FenceEpoch(2); e != 9 {
		t.Fatalf("fence after restart = %d; want the Apply-learned 9", e)
	}
	if err := re.Apply(2, 8, Commit{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale apply after restart err = %v; want ErrFenced", err)
	}
}

// Regression pin: fence records carry an epoch, not a key version — replay
// must not fold them into the version high-water mark or a large epoch would
// inflate every version allocated after restart.
func TestDiskBackendFenceEpochDoesNotInflateVersions(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Put("k", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Promote(0, 1000); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v2, err := re.Put("k2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v+1 {
		t.Fatalf("post-restart version = %d; want %d (epoch 1000 leaked into the version counter)", v2, v+1)
	}
}

func TestDiskBackendRejectsCorruptJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.journal")
	if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir); err == nil {
		t.Fatal("corrupt journal must fail to open")
	}
}

// The disk+fsync variant is the same journal with per-commit fsync: it
// must open through the spec registry, ack writes only after a durable
// journal append, and replay identically to the plain disk backend.
func TestDiskFsyncBackendOpensAndReplays(t *testing.T) {
	dir := t.TempDir()
	be, err := Open("disk+fsync:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if !be.(*DiskStore).fsync {
		t.Fatal("disk+fsync spec did not enable per-commit fsync")
	}
	if _, err := be.Put("map/1", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Promote(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open("disk+fsync:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, _, err := re.Get("map/1"); err != nil || string(got) != "a" {
		t.Fatalf("map/1 = %q err=%v; want a", got, err)
	}
	if e, _ := re.FenceEpoch(2); e != 5 {
		t.Fatalf("fence after restart = %d; want 5", e)
	}
}
