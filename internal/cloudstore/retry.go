package cloudstore

import (
	"errors"
	"time"
)

// RetryPolicy bounds an optimistic-concurrency retry loop around CAS
// operations. Every writer that sequences itself through a shared key (the
// replication log head, checkpoint sequence slots) needs the same shape:
// attempt, and on ErrVersionMismatch re-read whatever the attempt is based
// on and try again after an exponential backoff. Centralizing the loop keeps
// the backoff behavior uniform instead of hand-rolled per call site.
type RetryPolicy struct {
	// Attempts caps how many times the operation runs; 0 means unlimited.
	// CAS conflicts imply another writer made progress, so an unlimited
	// loop is lock-free, not livelocked — bounded policies exist for
	// callers that prefer to surface sustained contention.
	Attempts int
	// Base is the first backoff sleep (default 200µs).
	Base time.Duration
	// Max caps the exponential backoff (default 8ms).
	Max time.Duration
}

// DefaultRetry is the policy used by the replication log and checkpoint
// writers: unlimited attempts, 200µs→8ms exponential backoff.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{Base: 200 * time.Microsecond, Max: 8 * time.Millisecond}
}

// Retry runs op until it succeeds or fails with anything other than
// ErrVersionMismatch (store unavailability, encoding failures and the like
// are real errors, not contention, and surface immediately). op must
// re-read its CAS basis on every attempt — the conflict means the basis
// moved. When a bounded policy exhausts its attempts the last
// ErrVersionMismatch is returned.
func Retry(p RetryPolicy, op func() error) error {
	if p.Base <= 0 {
		p.Base = 200 * time.Microsecond
	}
	if p.Max <= 0 {
		p.Max = 8 * time.Millisecond
	}
	backoff := p.Base
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !errors.Is(err, ErrVersionMismatch) {
			return err
		}
		if p.Attempts > 0 && attempt >= p.Attempts {
			return err
		}
		time.Sleep(backoff)
		if backoff < p.Max {
			backoff *= 2
		}
	}
}
