package cloudstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Backend is what a store-server process hosts: a full replica surface plus
// resource teardown. The in-memory Store and the disk-journaled DiskStore
// both implement it; external KV adapters register the same way.
type Backend interface {
	ReplicaAPI
	Close() error
}

// Factory constructs a backend from the argument part of its spec (the text
// after the first ':', empty when the spec is just the backend name).
type Factory func(arg string) (Backend, error)

var (
	registryMu sync.Mutex
	registry   = make(map[string]Factory)
)

// RegisterBackend makes a backend constructable by Open under the given
// name. Registering a duplicate name panics — backends are wired at init
// time and a silent override would misroute deployments.
func RegisterBackend(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cloudstore: backend %q registered twice", name))
	}
	registry[name] = f
}

// Backends lists the registered backend names in sorted order.
func Backends() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open constructs a backend from a spec of the form "name" or "name:arg" —
// e.g. "memory", or "disk:/var/lib/aeon/store-0".
func Open(spec string) (Backend, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	registryMu.Lock()
	f, ok := registry[name]
	registryMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cloudstore: unknown backend %q (have %v)", name, Backends())
	}
	return f(arg)
}

func init() {
	RegisterBackend("memory", func(string) (Backend, error) {
		return New(), nil
	})
}
