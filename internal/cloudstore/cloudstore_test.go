package cloudstore

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPutGet(t *testing.T) {
	s := New()
	v1, err := s.Put("a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	val, ver, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "x" || ver != v1 {
		t.Fatalf("got %q v%d; want x v%d", val, ver, v1)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	if _, _, err := s.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v; want ErrNotFound", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	_, _ = s.Put("a", []byte("abc"))
	val, _, _ := s.Get("a")
	val[0] = 'Z'
	val2, _, _ := s.Get("a")
	if string(val2) != "abc" {
		t.Fatal("Get must return a copy")
	}
}

func TestVersionsMonotonic(t *testing.T) {
	s := New()
	v1, _ := s.Put("a", nil)
	v2, _ := s.Put("a", nil)
	v3, _ := s.Put("b", nil)
	if !(v1 < v2 && v2 < v3) {
		t.Fatalf("versions %d %d %d not monotonic", v1, v2, v3)
	}
}

func TestCASCreate(t *testing.T) {
	s := New()
	if _, err := s.CAS("a", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CAS("a", 0, []byte("y")); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v; want ErrVersionMismatch", err)
	}
}

func TestCASUpdate(t *testing.T) {
	s := New()
	v1, _ := s.Put("a", []byte("x"))
	v2, err := s.CAS("a", v1, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CAS("a", v1, []byte("z")); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("stale CAS err = %v; want ErrVersionMismatch", err)
	}
	val, ver, _ := s.Get("a")
	if string(val) != "y" || ver != v2 {
		t.Fatalf("got %q v%d", val, ver)
	}
}

func TestCASOnlyOneWinner(t *testing.T) {
	s := New()
	v0, _ := s.Put("a", []byte("0"))
	var wins, losses int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.CAS("a", v0, []byte("w"))
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				wins++
			} else {
				losses++
			}
		}()
	}
	wg.Wait()
	if wins != 1 || losses != 15 {
		t.Fatalf("wins=%d losses=%d; want 1/15", wins, losses)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	_, _ = s.Put("a", nil)
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v; want ErrNotFound", err)
	}
}

func TestList(t *testing.T) {
	s := New()
	_, _ = s.Put("map/1", nil)
	_, _ = s.Put("map/2", nil)
	_, _ = s.Put("wal/1", nil)
	keys, err := s.List("map/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "map/1" || keys[1] != "map/2" {
		t.Fatalf("keys = %v", keys)
	}
	all, _ := s.List("")
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
}

func TestFailRecover(t *testing.T) {
	s := New()
	_, _ = s.Put("a", nil)
	s.Fail()
	if _, _, err := s.Get("a"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v; want ErrUnavailable", err)
	}
	if _, err := s.Put("b", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v; want ErrUnavailable", err)
	}
	s.Recover()
	if _, _, err := s.Get("a"); err != nil {
		t.Fatalf("after recover: %v", err)
	}
}

func TestLatencyCharged(t *testing.T) {
	s := New(WithLatency(10 * time.Millisecond))
	start := time.Now()
	_, _ = s.Put("a", nil)
	if el := time.Since(start); el < 9*time.Millisecond {
		t.Fatalf("Put took %v; want ≥10ms", el)
	}
}

func TestStats(t *testing.T) {
	s := New()
	_, _ = s.Put("a", nil)
	_, _, _ = s.Get("a")
	_, _, _ = s.Get("a")
	r, w := s.Stats()
	if r != 2 || w != 1 {
		t.Fatalf("reads=%d writes=%d; want 2/1", r, w)
	}
}

func TestPutBatchOneRoundTrip(t *testing.T) {
	s := New(WithLatency(10 * time.Millisecond))
	entries := map[string][]byte{
		"map/1": []byte("10"),
		"map/2": []byte("20"),
		"map/3": []byte("30"),
	}
	start := time.Now()
	last, err := s.PutBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	// One latency charge for the whole batch, not one per entry.
	if el := time.Since(start); el > 25*time.Millisecond {
		t.Fatalf("PutBatch took %v; want ~one 10ms round trip", el)
	}
	_, w := s.Stats()
	if w != 1 {
		t.Fatalf("writes = %d; want 1 (one batched RPC)", w)
	}
	var maxV uint64
	for k, want := range entries {
		got, v, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%q = %q; want %q", k, got, want)
		}
		if v > maxV {
			maxV = v
		}
	}
	if last != maxV {
		t.Fatalf("PutBatch version = %d; want highest assigned %d", last, maxV)
	}
	if _, err := s.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	s.Fail()
	if _, err := s.PutBatch(entries); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v; want ErrUnavailable while failed", err)
	}
}
