package cloudstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ReplicaAPI is the surface a store replica exposes: the plain client API
// plus the fenced per-operation surface and the replication/fencing
// operations a replicated client needs. Store implements it in-memory;
// node.RemoteStore implements it over the mesh so replicas can live in
// dedicated store-server processes.
type ReplicaAPI interface {
	API
	// Fenced ops: every operation of a replicated deployment carries the
	// partition and the fence epoch of the caller's view. A replica that
	// has accepted a newer epoch refuses with ErrFenced, so writes *and
	// reads* addressed to a deposed primary fail instead of silently
	// executing against (or serving) a stale view. Fenced writes raise the
	// replica's accepted epoch — durably, on journaling backends — when
	// they carry a newer one; fenced reads never mutate the fence.
	GetF(part int, epoch uint64, key string) ([]byte, uint64, error)
	ListF(part int, epoch uint64, prefix string) ([]string, error)
	PutF(part int, epoch uint64, key string, value []byte) (uint64, error)
	PutBatchF(part int, epoch uint64, entries map[string][]byte) (uint64, error)
	CreateBatchF(part int, epoch uint64, entries map[string][]byte) (uint64, error)
	CASF(part int, epoch uint64, key string, expect uint64, value []byte) (uint64, error)
	// DeleteF and DeleteBatchF return the tombstone version(s) assigned to
	// the removal(s) so deletes can be forwarded to followers with ordering
	// information; every key of a batch (present or missing) consumes one
	// version in sorted order.
	DeleteF(part int, epoch uint64, key string) (uint64, error)
	DeleteBatchF(part int, epoch uint64, keys []string) (uint64, error)
	// Apply installs a replicated commit under the given fence epoch.
	Apply(part int, epoch uint64, c Commit) error
	// Promote raises the partition's fence epoch. It is a fence advance,
	// not a role claim: primaryship is derived from the epoch, and failover
	// spreads the same epoch across the set until a majority holds it.
	Promote(part int, epoch uint64) (uint64, error)
	// FenceEpoch reports the highest fence epoch accepted for the partition.
	FenceEpoch(part int) (uint64, error)
}

// KV is one replicated set: the value and the version the primary assigned.
type KV struct {
	Key string
	Val []byte
	Ver uint64
}

// KD is one replicated delete: the tombstone version the primary assigned.
type KD struct {
	Key string
	Ver uint64
}

// Commit is the unit of replication a primary write forwards to followers.
// Versions are primary-assigned, so followers converge to primary order by
// applying each key's highest version (see Store.Apply).
type Commit struct {
	Sets []KV
	Dels []KD
}

// maxFailovers bounds how many view changes one logical operation will chase
// before giving up and surfacing the underlying error. Anything past two
// epoch bumps means the partition has no majority of live replicas.
const maxFailovers = 4

// Replicated is a replicated-partition client: it executes operations
// against the partition's current primary and acknowledges a write only
// once it is durable on a majority of the replica set.
//
// View convention: fence epochs start at 1 and the primary for epoch e is
// replicas[(e-1) % len(replicas)]. Every client derives the same primary
// from the same epoch, so the fence epoch alone names the view. Every
// operation — reads included — carries its epoch to the replica it
// addresses, and a replica that has accepted a newer fence refuses it with
// ErrFenced; the client then re-derives its view from the replicas' fence
// epochs and retries at the primary that epoch names.
//
// Quorum discipline: a write is acknowledged only when the primary executed
// it AND at least ⌊n/2⌋ followers accepted the fenced Apply — a majority of
// the set, the primary included. Failover (Promote) likewise only takes
// effect once a majority of replicas hold the new fence. Any two majorities
// intersect, so a client still acting for a deposed primary meets the newer
// fence on at least one replica of its write path and its write is never
// acknowledged — that intersection, not the fence check of any single
// follower, is what prevents split-brain. The flip side is honest
// unavailability: a client partitioned onto a minority of the set (e.g. one
// that can reach only a stale primary) gets ErrUnavailable instead of a
// degraded ack. A 2-replica set therefore cannot fail over — deployments
// that need to survive a replica loss run 3 replicas per partition.
//
// Known limits (resync/anti-entropy is future work): a replica that missed
// commits while unreachable is not re-synced when it returns — the fence
// only keeps it from serving a deposed view — and a promoted primary serves
// the commits *it* saw, which for writes acknowledged by the other majority
// member may lag until those keys are written again.
type Replicated struct {
	part     int
	replicas []ReplicaAPI

	mu      sync.Mutex
	epoch   uint64
	primary int

	// fenceAdvances counts adopted epoch bumps (failovers observed by this
	// client); quorumFailures counts writes and fence spreads that could
	// not reach a majority. onFence, when set, fires on every adopted
	// advance — the ops plane turns it into a store.fence_advance event.
	fenceAdvances  atomic.Uint64
	quorumFailures atomic.Uint64
	onFence        atomic.Pointer[func(part int, epoch uint64)]
}

var _ API = (*Replicated)(nil)

// NewReplicated returns a client for one partition served by the given
// replicas. All clients of a fresh partition start at epoch 1 with
// replicas[0] as primary; clients joining after a failover discover the
// real epoch on their first fenced operation.
func NewReplicated(part int, replicas ...ReplicaAPI) *Replicated {
	if len(replicas) == 0 {
		panic("cloudstore: NewReplicated needs at least one replica")
	}
	return &Replicated{part: part, replicas: replicas, epoch: 1, primary: 0}
}

// View reports the client's current fence epoch and primary index (tests and
// the bench harness use it to observe failovers).
func (r *Replicated) View() (epoch uint64, primary int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.primary
}

// Part reports the partition index this client serves.
func (r *Replicated) Part() int { return r.part }

// FenceAdvances counts the epoch bumps this client has adopted (its
// observed failovers).
func (r *Replicated) FenceAdvances() uint64 { return r.fenceAdvances.Load() }

// QuorumFailures counts writes and fence spreads refused because a majority
// of the replica set was unreachable.
func (r *Replicated) QuorumFailures() uint64 { return r.quorumFailures.Load() }

// SetOnFenceAdvance installs a callback fired (outside the view lock) each
// time this client adopts a newer fence epoch.
func (r *Replicated) SetOnFenceAdvance(fn func(part int, epoch uint64)) {
	r.onFence.Store(&fn)
}

// quorum is the majority size of the replica set; followerQuorum is how many
// follower acks a write needs on top of the primary's own copy to reach it.
func (r *Replicated) quorum() int         { return len(r.replicas)/2 + 1 }
func (r *Replicated) followerQuorum() int { return len(r.replicas) / 2 }

func (r *Replicated) adopt(epoch uint64) {
	r.mu.Lock()
	advanced := epoch > r.epoch
	if advanced {
		r.epoch = epoch
		r.primary = int((epoch - 1) % uint64(len(r.replicas)))
	}
	r.mu.Unlock()
	if advanced {
		r.fenceAdvances.Add(1)
		if fn := r.onFence.Load(); fn != nil {
			(*fn)(r.part, epoch)
		}
	}
}

// isSemantic reports whether err is a store-semantic outcome (key state) as
// opposed to a replica-health signal; semantic errors surface to the caller
// unchanged instead of triggering failover.
func isSemantic(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrVersionMismatch)
}

// refresh re-derives the view from the replicas' accepted fence epochs after
// an ErrFenced: whoever fenced us recorded a higher epoch on at least one
// reachable replica.
func (r *Replicated) refresh() {
	max := uint64(0)
	for _, rep := range r.replicas {
		if e, err := rep.FenceEpoch(r.part); err == nil && e > max {
			max = e
		}
	}
	r.adopt(max)
}

// failoverFrom fences a new epoch past fromEpoch onto the replica set: the
// epoch's designated primary must accept the Promote, and the fence must
// then reach a majority of the set before the new view serves. Requiring a
// majority of fence-holders is what makes the fence meaningful — a write
// acked under an older epoch needed a majority too, so the two sets
// intersect and a stale writer is refused by at least one replica on its
// path. Promote refusing with ErrFenced means someone else already moved
// the view forward — adopt theirs.
func (r *Replicated) failoverFrom(fromEpoch uint64) error {
	n := uint64(len(r.replicas))
	for i := uint64(1); i <= n; i++ {
		e := fromEpoch + i
		idx := int((e - 1) % n)
		got, err := r.replicas[idx].Promote(r.part, e)
		switch {
		case errors.Is(err, ErrFenced):
			r.adopt(got)
			return nil
		case err != nil:
			continue // unreachable — try the replica the next epoch maps to
		}
		// Spread the fence to the rest of the set; the promotion is
		// effective once a majority (the new primary included) holds it.
		holders := 1
		for j, rep := range r.replicas {
			if j == idx {
				continue
			}
			g, perr := rep.Promote(r.part, e)
			switch {
			case perr == nil:
				holders++
			case errors.Is(perr, ErrFenced):
				r.adopt(g)
				return nil
			}
		}
		if holders < r.quorum() {
			r.quorumFailures.Add(1)
			return fmt.Errorf("partition %d: fence %d held by %d/%d replicas, need %d: %w",
				r.part, e, holders, len(r.replicas), r.quorum(), ErrUnavailable)
		}
		r.adopt(e)
		return nil
	}
	return ErrUnavailable
}

// do runs op against the current primary, chasing fence changes and failing
// over past dead primaries, up to maxFailovers view changes.
func (r *Replicated) do(op func(p ReplicaAPI, primaryIdx int, epoch uint64) error) error {
	var lastErr error
	for attempt := 0; attempt <= maxFailovers; attempt++ {
		r.mu.Lock()
		pi, e := r.primary, r.epoch
		r.mu.Unlock()
		err := op(r.replicas[pi], pi, e)
		switch {
		case err == nil:
			return nil
		case isSemantic(err):
			return err
		case errors.Is(err, ErrFenced):
			// Our view is stale: someone fenced a newer epoch. Re-derive it
			// and retry at the primary that epoch names.
			r.refresh()
			lastErr = err
		default:
			// Primary unreachable, or the write could not reach a majority
			// (ErrUnavailable or a transport error): fence the next epoch
			// onto the surviving replicas. If no majority is reachable the
			// failover refuses too and the error surfaces — never a
			// degraded ack.
			if ferr := r.failoverFrom(e); ferr != nil {
				return err
			}
			lastErr = err
		}
	}
	return lastErr
}

// commit forwards a write to every non-primary replica under the epoch it
// was performed at and gates the ack on a majority. An ErrFenced from any
// follower aborts the ack outright — the write happened on a deposed
// primary. Short of ⌊n/2⌋ follower acks the write is not acknowledged
// either: a client that can reach the primary but not enough of the rest of
// the set (a partial partition — exactly the window where another client
// may be failing over) surfaces ErrUnavailable instead of acking a write
// the next view may never see.
func (r *Replicated) commit(epoch uint64, primaryIdx int, c Commit) error {
	acks := 0
	var lastErr error
	for i, rep := range r.replicas {
		if i == primaryIdx {
			continue
		}
		switch err := rep.Apply(r.part, epoch, c); {
		case err == nil:
			acks++
		case errors.Is(err, ErrFenced):
			return err
		default:
			lastErr = err
		}
	}
	if acks < r.followerQuorum() {
		r.quorumFailures.Add(1)
		return fmt.Errorf("partition %d: write at epoch %d reached %d/%d followers, need %d for a majority (last: %v): %w",
			r.part, epoch, acks, len(r.replicas)-1, r.followerQuorum(), lastErr, ErrUnavailable)
	}
	return nil
}

// Get reads from the current primary under the view's fence: a deposed
// primary that learned the newer epoch refuses the read instead of serving
// a stale view. (A deposed primary that never learned it — unreachable from
// every newer-view client — can still serve reads of its old view; closing
// that needs read quorums or leases and is documented as a limit above.)
func (r *Replicated) Get(key string) (value []byte, version uint64, err error) {
	gerr := r.do(func(p ReplicaAPI, _ int, epoch uint64) error {
		value, version, err = p.GetF(r.part, epoch, key)
		return err
	})
	if gerr != nil {
		return nil, 0, gerr
	}
	return value, version, nil
}

// List reads from the current primary under the view's fence.
func (r *Replicated) List(prefix string) (keys []string, err error) {
	lerr := r.do(func(p ReplicaAPI, _ int, epoch uint64) error {
		keys, err = p.ListF(r.part, epoch, prefix)
		return err
	})
	if lerr != nil {
		return nil, lerr
	}
	return keys, nil
}

// Put writes through the primary and replicates to a majority before
// acknowledging.
func (r *Replicated) Put(key string, value []byte) (uint64, error) {
	var ver uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.PutF(r.part, epoch, key, value)
		if err != nil {
			return err
		}
		ver = v
		return r.commit(epoch, pi, Commit{Sets: []KV{{Key: key, Val: value, Ver: v}}})
	})
	if err != nil {
		return 0, err
	}
	return ver, nil
}

// batchSets reconstructs the per-key versions of a batch write: the store
// assigns contiguous versions in sorted key order under its lock, so the
// returned high-water version determines every key's version.
func batchSets(entries map[string][]byte, last uint64) []KV {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := uint64(len(keys))
	sets := make([]KV, len(keys))
	for i, k := range keys {
		sets[i] = KV{Key: k, Val: entries[k], Ver: last - n + 1 + uint64(i)}
	}
	return sets
}

// PutBatch writes through the primary and replicates to a majority before
// acknowledging.
func (r *Replicated) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	var last uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.PutBatchF(r.part, epoch, entries)
		if err != nil {
			return err
		}
		last = v
		return r.commit(epoch, pi, Commit{Sets: batchSets(entries, v)})
	})
	if err != nil {
		return 0, err
	}
	return last, nil
}

// CreateBatch creates through the primary and replicates to a majority
// before acknowledging; an existing key surfaces as ErrVersionMismatch
// unchanged.
func (r *Replicated) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	var last uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.CreateBatchF(r.part, epoch, entries)
		if err != nil {
			return err
		}
		last = v
		return r.commit(epoch, pi, Commit{Sets: batchSets(entries, v)})
	})
	if err != nil {
		return 0, err
	}
	return last, nil
}

// CAS writes through the primary and replicates to a majority before
// acknowledging. The CAS itself stays strictly per-key on the primary, so
// CAS-sequenced protocols (the replication log's commit point) keep their
// semantics.
func (r *Replicated) CAS(key string, expect uint64, value []byte) (uint64, error) {
	var ver uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.CASF(r.part, epoch, key, expect, value)
		if err != nil {
			return err
		}
		ver = v
		return r.commit(epoch, pi, Commit{Sets: []KV{{Key: key, Val: value, Ver: v}}})
	})
	if err != nil {
		return 0, err
	}
	return ver, nil
}

// Delete deletes through the primary and replicates the tombstone to a
// majority before acknowledging.
func (r *Replicated) Delete(key string) error {
	return r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.DeleteF(r.part, epoch, key)
		if err != nil {
			return err
		}
		return r.commit(epoch, pi, Commit{Dels: []KD{{Key: key, Ver: v}}})
	})
}

// DeleteBatch deletes through the primary and replicates the tombstones to a
// majority before acknowledging.
func (r *Replicated) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	return r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		last, err := p.DeleteBatchF(r.part, epoch, keys)
		if err != nil {
			return err
		}
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		n := uint64(len(sorted))
		dels := make([]KD, len(sorted))
		for i, k := range sorted {
			dels[i] = KD{Key: k, Ver: last - n + 1 + uint64(i)}
		}
		return r.commit(epoch, pi, Commit{Dels: dels})
	})
}
