package cloudstore

import (
	"errors"
	"sort"
	"sync"
)

// ReplicaAPI is the surface a store replica exposes: the plain client API
// plus the replication and fencing operations a replicated client needs.
// Store implements it in-memory; node.RemoteStore implements it over the
// mesh so replicas can live in dedicated store-server processes.
type ReplicaAPI interface {
	API
	// DeleteV is Delete returning the tombstone version, so deletes can be
	// forwarded to followers with ordering information.
	DeleteV(key string) (uint64, error)
	// DeleteBatchV is DeleteBatch returning the highest tombstone version;
	// every key (present or missing) consumes one version in sorted order.
	DeleteBatchV(keys []string) (uint64, error)
	// Apply installs a replicated commit under the given fence epoch.
	Apply(part int, epoch uint64, c Commit) error
	// Promote raises the partition's fence epoch, claiming primaryship.
	Promote(part int, epoch uint64) (uint64, error)
	// FenceEpoch reports the highest fence epoch accepted for the partition.
	FenceEpoch(part int) (uint64, error)
}

// KV is one replicated set: the value and the version the primary assigned.
type KV struct {
	Key string
	Val []byte
	Ver uint64
}

// KD is one replicated delete: the tombstone version the primary assigned.
type KD struct {
	Key string
	Ver uint64
}

// Commit is the unit of replication a primary write forwards to followers.
// Versions are primary-assigned, so followers converge to primary order by
// applying each key's highest version (see Store.Apply).
type Commit struct {
	Sets []KV
	Dels []KD
}

// maxFailovers bounds how many view changes one logical operation will chase
// before giving up and surfacing the underlying error. With a primary+
// follower pair, anything past two means the partition has no live replica.
const maxFailovers = 4

// Replicated is a replicated-partition client: it executes reads and writes
// against the partition's current primary and forwards every write as a
// fenced Commit to the remaining replicas before acknowledging it.
//
// View convention: fence epochs start at 1 and the primary for epoch e is
// replicas[(e-1) % len(replicas)]. Every client derives the same primary
// from the same epoch, so the fence epoch alone names the view. Failover
// promotes the next replica by claiming epoch e+1 on it (a CAS-style fence:
// Promote refuses to move backwards); a client still acting for a deposed
// primary has its Apply refused with ErrFenced, refreshes its view from the
// replicas' fence epochs, and retries — the stale primary's writes are never
// acknowledged, which is what prevents split-brain.
//
// After a failover the partition runs degraded: an unreachable follower is
// skipped rather than resynced (resync/re-join is future work; the fence
// keeps a returning stale replica from serving writes it missed).
type Replicated struct {
	part     int
	replicas []ReplicaAPI

	mu      sync.Mutex
	epoch   uint64
	primary int
}

var _ API = (*Replicated)(nil)

// NewReplicated returns a client for one partition served by the given
// replicas. All clients of a fresh partition start at epoch 1 with
// replicas[0] as primary; clients joining after a failover discover the
// real epoch on their first fenced write.
func NewReplicated(part int, replicas ...ReplicaAPI) *Replicated {
	if len(replicas) == 0 {
		panic("cloudstore: NewReplicated needs at least one replica")
	}
	return &Replicated{part: part, replicas: replicas, epoch: 1, primary: 0}
}

// View reports the client's current fence epoch and primary index (tests and
// the bench harness use it to observe failovers).
func (r *Replicated) View() (epoch uint64, primary int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.primary
}

func (r *Replicated) adopt(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch > r.epoch {
		r.epoch = epoch
		r.primary = int((epoch - 1) % uint64(len(r.replicas)))
	}
}

// isSemantic reports whether err is a store-semantic outcome (key state) as
// opposed to a replica-health signal; semantic errors surface to the caller
// unchanged instead of triggering failover.
func isSemantic(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, ErrVersionMismatch)
}

// refresh re-derives the view from the replicas' accepted fence epochs after
// an ErrFenced: whoever fenced us recorded a higher epoch on at least one
// reachable replica.
func (r *Replicated) refresh() {
	max := uint64(0)
	for _, rep := range r.replicas {
		if e, err := rep.FenceEpoch(r.part); err == nil && e > max {
			max = e
		}
	}
	r.adopt(max)
}

// failoverFrom fences a new epoch past fromEpoch onto the next reachable
// replica. Promote refusing with ErrFenced means someone else already moved
// the view forward — adopt theirs.
func (r *Replicated) failoverFrom(fromEpoch uint64) error {
	n := uint64(len(r.replicas))
	for i := uint64(1); i <= n; i++ {
		e := fromEpoch + i
		idx := int((e - 1) % n)
		got, err := r.replicas[idx].Promote(r.part, e)
		switch {
		case err == nil:
			r.adopt(e)
			return nil
		case errors.Is(err, ErrFenced):
			r.adopt(got)
			return nil
		}
		// Unreachable — try the replica the next epoch maps to.
	}
	return ErrUnavailable
}

// do runs op against the current primary, chasing fence changes and failing
// over past dead primaries, up to maxFailovers view changes.
func (r *Replicated) do(op func(p ReplicaAPI, primaryIdx int, epoch uint64) error) error {
	var lastErr error
	for attempt := 0; attempt <= maxFailovers; attempt++ {
		r.mu.Lock()
		pi, e := r.primary, r.epoch
		r.mu.Unlock()
		err := op(r.replicas[pi], pi, e)
		switch {
		case err == nil:
			return nil
		case isSemantic(err):
			return err
		case errors.Is(err, ErrFenced):
			// Our view is stale: someone fenced a newer epoch. Re-derive it
			// and retry at the primary that epoch names.
			r.refresh()
			lastErr = err
		default:
			// Primary unreachable (ErrUnavailable or a transport error):
			// fence the next epoch onto a surviving replica.
			if ferr := r.failoverFrom(e); ferr != nil {
				return err
			}
			lastErr = err
		}
	}
	return lastErr
}

// commit forwards a write to every non-primary replica under the epoch it
// was performed at. An ErrFenced from any follower aborts the ack — the
// write happened on a deposed primary. An unreachable follower is skipped:
// the partition is degraded but the write is durable on the primary.
func (r *Replicated) commit(epoch uint64, primaryIdx int, c Commit) error {
	for i, rep := range r.replicas {
		if i == primaryIdx {
			continue
		}
		if err := rep.Apply(r.part, epoch, c); err != nil && errors.Is(err, ErrFenced) {
			return err
		}
	}
	return nil
}

// Get reads from the current primary.
func (r *Replicated) Get(key string) (value []byte, version uint64, err error) {
	gerr := r.do(func(p ReplicaAPI, _ int, _ uint64) error {
		value, version, err = p.Get(key)
		return err
	})
	if gerr != nil {
		return nil, 0, gerr
	}
	return value, version, nil
}

// List reads from the current primary.
func (r *Replicated) List(prefix string) (keys []string, err error) {
	lerr := r.do(func(p ReplicaAPI, _ int, _ uint64) error {
		keys, err = p.List(prefix)
		return err
	})
	if lerr != nil {
		return nil, lerr
	}
	return keys, nil
}

// Put writes through the primary and replicates before acknowledging.
func (r *Replicated) Put(key string, value []byte) (uint64, error) {
	var ver uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.Put(key, value)
		if err != nil {
			return err
		}
		ver = v
		return r.commit(epoch, pi, Commit{Sets: []KV{{Key: key, Val: value, Ver: v}}})
	})
	if err != nil {
		return 0, err
	}
	return ver, nil
}

// batchSets reconstructs the per-key versions of a batch write: the store
// assigns contiguous versions in sorted key order under its lock, so the
// returned high-water version determines every key's version.
func batchSets(entries map[string][]byte, last uint64) []KV {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	n := uint64(len(keys))
	sets := make([]KV, len(keys))
	for i, k := range keys {
		sets[i] = KV{Key: k, Val: entries[k], Ver: last - n + 1 + uint64(i)}
	}
	return sets
}

// PutBatch writes through the primary and replicates before acknowledging.
func (r *Replicated) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	var last uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.PutBatch(entries)
		if err != nil {
			return err
		}
		last = v
		return r.commit(epoch, pi, Commit{Sets: batchSets(entries, v)})
	})
	if err != nil {
		return 0, err
	}
	return last, nil
}

// CreateBatch creates through the primary and replicates before
// acknowledging; an existing key surfaces as ErrVersionMismatch unchanged.
func (r *Replicated) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	var last uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.CreateBatch(entries)
		if err != nil {
			return err
		}
		last = v
		return r.commit(epoch, pi, Commit{Sets: batchSets(entries, v)})
	})
	if err != nil {
		return 0, err
	}
	return last, nil
}

// CAS writes through the primary and replicates before acknowledging. The
// CAS itself stays strictly per-key on the primary, so CAS-sequenced
// protocols (the replication log's commit point) keep their semantics.
func (r *Replicated) CAS(key string, expect uint64, value []byte) (uint64, error) {
	var ver uint64
	err := r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.CAS(key, expect, value)
		if err != nil {
			return err
		}
		ver = v
		return r.commit(epoch, pi, Commit{Sets: []KV{{Key: key, Val: value, Ver: v}}})
	})
	if err != nil {
		return 0, err
	}
	return ver, nil
}

// Delete deletes through the primary and replicates the tombstone.
func (r *Replicated) Delete(key string) error {
	return r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		v, err := p.DeleteV(key)
		if err != nil {
			return err
		}
		return r.commit(epoch, pi, Commit{Dels: []KD{{Key: key, Ver: v}}})
	})
}

// DeleteBatch deletes through the primary and replicates the tombstones.
func (r *Replicated) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	return r.do(func(p ReplicaAPI, pi int, epoch uint64) error {
		last, err := p.DeleteBatchV(keys)
		if err != nil {
			return err
		}
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		n := uint64(len(sorted))
		dels := make([]KD, len(sorted))
		for i, k := range sorted {
			dels[i] = KD{Key: k, Ver: last - n + 1 + uint64(i)}
		}
		return r.commit(epoch, pi, Commit{Dels: dels})
	})
}
