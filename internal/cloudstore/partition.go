package cloudstore

import (
	"hash/fnv"
	"sort"
	"strings"
)

// Partitioned is a sharded cloud-store client: it routes every operation to
// the partition owning the key and implements API, so the eManager, the
// replication log, and the migration engine shard transparently.
//
// Routing hashes the key's *prefix group* — the key up to its last '/' (the
// whole key when it has none) — so each key family lands wholly on one
// partition: all `map/<id>` entries share one shard, every `replog/rec/<seq>`
// record shares one shard (the log's CAS commit point stays per-key on one
// store), and each context tree's `snapshot/<root>/<seq>` history co-locates.
// Cross-partition batches are therefore rare, but still correct (see
// CreateBatch for the rollback discipline).
type Partitioned struct {
	parts []API
}

var _ API = (*Partitioned)(nil)

// NewPartitioned returns a client routing over the given partitions in
// order. Partition count is a deployment-time constant: every client must be
// constructed with the same list or keys route inconsistently.
func NewPartitioned(parts ...API) *Partitioned {
	if len(parts) == 0 {
		panic("cloudstore: NewPartitioned needs at least one partition")
	}
	return &Partitioned{parts: parts}
}

// Parts reports the partition count.
func (p *Partitioned) Parts() int { return len(p.parts) }

// Partition returns the client serving partition i (the ops plane uses it
// to reach each partition's Replicated view).
func (p *Partitioned) Partition(i int) API { return p.parts[i] }

// PartitionOf reports which partition owns key.
func (p *Partitioned) PartitionOf(key string) int {
	return partitionOf(key, len(p.parts))
}

func partitionOf(key string, n int) int {
	if n == 1 {
		return 0
	}
	group := key
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		group = key[:i]
	}
	h := fnv.New32a()
	h.Write([]byte(group))
	return int(h.Sum32() % uint32(n))
}

func (p *Partitioned) Get(key string) ([]byte, uint64, error) {
	return p.parts[p.PartitionOf(key)].Get(key)
}

func (p *Partitioned) Put(key string, value []byte) (uint64, error) {
	return p.parts[p.PartitionOf(key)].Put(key, value)
}

func (p *Partitioned) CAS(key string, expect uint64, value []byte) (uint64, error) {
	return p.parts[p.PartitionOf(key)].CAS(key, expect, value)
}

func (p *Partitioned) Delete(key string) error {
	return p.parts[p.PartitionOf(key)].Delete(key)
}

// group splits a batch by owning partition.
func (p *Partitioned) group(keys []string) map[int][]string {
	out := make(map[int][]string)
	for _, k := range keys {
		i := p.PartitionOf(k)
		out[i] = append(out[i], k)
	}
	return out
}

// PutBatch routes each entry to its partition. Atomicity holds per
// partition; versions are per-partition sequences, so the returned version
// is the highest assigned and only meaningful for single-partition batches
// (which prefix-group routing makes the common case).
func (p *Partitioned) PutBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	sub := make(map[int]map[string][]byte)
	for k, v := range entries {
		i := p.PartitionOf(k)
		if sub[i] == nil {
			sub[i] = make(map[string][]byte)
		}
		sub[i][k] = v
	}
	var last uint64
	for _, i := range sortedParts(sub) {
		v, err := p.parts[i].PutBatch(sub[i])
		if err != nil {
			return 0, err
		}
		if v > last {
			last = v
		}
	}
	return last, nil
}

// CreateBatch routes each entry to its partition, creating sub-batches in
// partition order. If a later sub-batch collides (some key exists), the
// already-created sub-batches are rolled back best-effort before returning
// ErrVersionMismatch, preserving the read-recompute-retry discipline: a
// retrying caller re-reads and recreates the full generation. The rollback
// deletes by key, not by version, so it races concurrent writers: a Put/CAS
// that overwrote one of our just-created keys before the rollback runs has
// its committed value deleted along with ours. Callers that create keys
// other writers may immediately overwrite must not rely on cross-partition
// CreateBatch atomicity (prefix-group routing keeps the store's own callers
// on single-partition batches, where the store rolls back atomically under
// its lock instead).
func (p *Partitioned) CreateBatch(entries map[string][]byte) (uint64, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	sub := make(map[int]map[string][]byte)
	for k, v := range entries {
		i := p.PartitionOf(k)
		if sub[i] == nil {
			sub[i] = make(map[string][]byte)
		}
		sub[i][k] = v
	}
	order := sortedParts(sub)
	var last uint64
	for n, i := range order {
		v, err := p.parts[i].CreateBatch(sub[i])
		if err != nil {
			// Roll back the sub-batches already created so a retry starts
			// from a clean slate. Best-effort: a partition that died mid-
			// rollback leaves orphans for the caller's retry to collide on.
			for _, j := range order[:n] {
				created := make([]string, 0, len(sub[j]))
				for k := range sub[j] {
					created = append(created, k)
				}
				_ = p.parts[j].DeleteBatch(created)
			}
			return 0, err
		}
		if v > last {
			last = v
		}
	}
	return last, nil
}

// DeleteBatch routes each key to its partition; missing keys stay ignored.
func (p *Partitioned) DeleteBatch(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	grouped := p.group(keys)
	for _, i := range sortedPartsS(grouped) {
		if err := p.parts[i].DeleteBatch(grouped[i]); err != nil {
			return err
		}
	}
	return nil
}

// List fans out to every partition and merges the sorted results.
func (p *Partitioned) List(prefix string) ([]string, error) {
	var out []string
	for _, part := range p.parts {
		keys, err := part.List(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, keys...)
	}
	sort.Strings(out)
	return out, nil
}

func sortedParts(m map[int]map[string][]byte) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func sortedPartsS(m map[int][]string) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
