package cloudstore

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// TestCASContentionThroughHeadKey drives N goroutines appending through one
// head-sequence key — the replication log's write pattern — with the shared
// Retry helper. Every increment must land exactly once: no lost updates, no
// double-claims, and the key's final value must equal the total append
// count.
func TestCASContentionThroughHeadKey(t *testing.T) {
	s := New()
	const head = "replog/head"
	const goroutines, each = 8, 25

	claimed := make(map[uint64]bool)
	var claimedMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				var mine uint64
				err := Retry(DefaultRetry(), func() error {
					// Re-base on every attempt: read the current head, claim
					// the next sequence with CAS on its version.
					var cur uint64
					var ver uint64
					raw, v, err := s.Get(head)
					switch {
					case err == nil:
						cur, err = strconv.ParseUint(string(raw), 10, 64)
						if err != nil {
							return err
						}
						ver = v
					case errors.Is(err, ErrNotFound):
						ver = 0
					default:
						return err
					}
					mine = cur + 1
					_, err = s.CAS(head, ver, []byte(strconv.FormatUint(mine, 10)))
					return err
				})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				claimedMu.Lock()
				dup := claimed[mine]
				claimed[mine] = true
				claimedMu.Unlock()
				if dup {
					t.Errorf("sequence %d claimed twice", mine)
					return
				}
			}
		}()
	}
	wg.Wait()
	raw, _, err := s.Get(head)
	if err != nil {
		t.Fatal(err)
	}
	final, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(goroutines * each); final != want {
		t.Fatalf("head = %d after contention; want %d (lost updates)", final, want)
	}
	for seq := uint64(1); seq <= uint64(goroutines*each); seq++ {
		if !claimed[seq] {
			t.Fatalf("sequence %d never claimed (hole)", seq)
		}
	}
}

func TestRetryStopsOnNonConflictErrors(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(DefaultRetry(), func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d; want immediate non-conflict failure", err, calls)
	}
	// Unavailability is a real failure, not contention.
	calls = 0
	err = Retry(DefaultRetry(), func() error {
		calls++
		return fmt.Errorf("op: %w", ErrUnavailable)
	})
	if !errors.Is(err, ErrUnavailable) || calls != 1 {
		t.Fatalf("err=%v calls=%d; want immediate ErrUnavailable", err, calls)
	}
}

func TestRetryBoundedAttempts(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{Attempts: 3, Base: 1, Max: 1}, func() error {
		calls++
		return fmt.Errorf("op: %w", ErrVersionMismatch)
	})
	if !errors.Is(err, ErrVersionMismatch) || calls != 3 {
		t.Fatalf("err=%v calls=%d; want the last mismatch after 3 attempts", err, calls)
	}
}

func TestRetrySucceedsAfterConflicts(t *testing.T) {
	calls := 0
	err := Retry(DefaultRetry(), func() error {
		calls++
		if calls < 4 {
			return fmt.Errorf("op: %w", ErrVersionMismatch)
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d; want success on the 4th attempt", err, calls)
	}
}
