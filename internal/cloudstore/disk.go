package cloudstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Journal record ops. The journal is the disk backend's only persistent
// structure: an append-only JSON-lines file replayed on open.
const (
	jSet   = "set"
	jDel   = "del"
	jFence = "fence" // Key holds the partition number, Ver the epoch
)

// jrec is one journal line: a single key mutation (or fence advance) with
// the version the store assigned it. Records are written under the store
// lock, so journal order is apply order.
type jrec struct {
	Op  string `json:"op"`
	Key string `json:"k"`
	Val []byte `json:"v,omitempty"`
	Ver uint64 `json:"ver"`
}

// DiskStore is a Store whose every mutation is journaled to disk and whose
// state is rebuilt by replaying the journal on open. It exists so a store
// replica can survive a process restart with its fence epoch intact — a
// restarted stale primary must still refuse deposed-epoch applies.
//
// Durability is crash-consistent at the process level (the journal is
// written and flushed before a mutation is acknowledged); by default it
// does not fsync per record, so it is not power-failure durable. Opening
// with fsync enabled ("disk+fsync:<dir>") adds an fsync per commit, making
// an acked write survive a crash of the host — at the cost of turning each
// commit into a synchronous disk round-trip (order-of-magnitude write
// throughput loss on typical hardware; see the README's backend notes),
// which is why it is opt-in per deployment rather than the default.
type DiskStore struct {
	*Store
	f     *os.File
	w     *bufio.Writer
	fsync bool
}

var _ Backend = (*DiskStore)(nil)

// OpenDisk opens (or creates) the disk backend rooted at dir, replaying
// dir/store.journal into memory. Commits flush but do not fsync.
func OpenDisk(dir string) (*DiskStore, error) {
	return openDisk(dir, false)
}

// OpenDiskSync is OpenDisk with per-commit fsync: every acknowledged
// mutation is synced to stable storage before the ack, so chaos
// kill-the-store-process scenarios model a crash of the host honestly.
func OpenDiskSync(dir string) (*DiskStore, error) {
	return openDisk(dir, true)
}

func openDisk(dir string, fsync bool) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cloudstore: disk backend: %w", err)
	}
	path := filepath.Join(dir, "store.journal")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cloudstore: disk backend: %w", err)
	}
	s := New()
	var maxVer uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jrec
		if err := json.Unmarshal(raw, &rec); err != nil {
			f.Close()
			return nil, fmt.Errorf("cloudstore: journal %s line %d: %w", path, line, err)
		}
		switch rec.Op {
		case jSet:
			s.data[rec.Key] = entry{value: rec.Val, version: rec.Ver}
			if rec.Ver > s.applied[rec.Key] {
				s.applied[rec.Key] = rec.Ver
			}
		case jDel:
			delete(s.data, rec.Key)
			if rec.Ver > s.applied[rec.Key] {
				s.applied[rec.Key] = rec.Ver
			}
		case jFence:
			part, perr := strconv.Atoi(rec.Key)
			if perr != nil {
				f.Close()
				return nil, fmt.Errorf("cloudstore: journal %s line %d: bad fence partition %q", path, line, rec.Key)
			}
			if rec.Ver > s.fences[part] {
				s.fences[part] = rec.Ver
			}
		default:
			f.Close()
			return nil, fmt.Errorf("cloudstore: journal %s line %d: unknown op %q", path, line, rec.Op)
		}
		// Only set/del records carry key versions; a fence record's Ver is an
		// epoch, which must not inflate the replayed version sequence.
		if rec.Op != jFence && rec.Ver > maxVer {
			maxVer = rec.Ver
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("cloudstore: journal %s: %w", path, err)
	}
	s.next = maxVer + 1
	d := &DiskStore{Store: s, f: f, w: bufio.NewWriter(f), fsync: fsync}
	// The hook runs under Store.mu, so writes are ordered without a second
	// lock; flushing per commit makes the journal current before the ack,
	// and (with fsync) syncing makes it durable before the ack.
	s.persist = func(recs []jrec) error {
		for _, rec := range recs {
			b, err := json.Marshal(rec)
			if err != nil {
				return fmt.Errorf("cloudstore: journal encode: %w", err)
			}
			if _, err := d.w.Write(append(b, '\n')); err != nil {
				return fmt.Errorf("cloudstore: journal write: %w", err)
			}
		}
		if err := d.w.Flush(); err != nil {
			return err
		}
		if d.fsync {
			if err := d.f.Sync(); err != nil {
				return fmt.Errorf("cloudstore: journal fsync: %w", err)
			}
		}
		return nil
	}
	return d, nil
}

// Close flushes and closes the journal.
func (d *DiskStore) Close() error {
	d.Store.mu.Lock()
	defer d.Store.mu.Unlock()
	if err := d.w.Flush(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

func init() {
	RegisterBackend("disk", func(arg string) (Backend, error) {
		if arg == "" {
			return nil, fmt.Errorf("cloudstore: disk backend needs a directory, use disk:<dir>")
		}
		return OpenDisk(arg)
	})
	RegisterBackend("disk+fsync", func(arg string) (Backend, error) {
		if arg == "" {
			return nil, fmt.Errorf("cloudstore: disk+fsync backend needs a directory, use disk+fsync:<dir>")
		}
		return OpenDiskSync(arg)
	})
}
