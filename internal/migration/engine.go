// Package migration implements AEON's elastic migration as a batched,
// pipelined engine over the paper's five-step protocol (§ 5.2). Where the
// original eManager looped the protocol over every member of a placement
// group — N journaled WAL rounds, N stop/δ windows, N state-transfer
// sleeps, and a group split across servers until the loop finished — the
// engine runs ONE protocol round per group:
//
//	I   one journaled intent + one prepare exchange with the destination
//	II  one stop exchange with the source, then one group stop window in
//	    which membership is re-snapshotted (children created mid-migration
//	    are adopted, never left behind) and sealed into the WAL
//	III one δ settle, then one bulk mapping publish (a single batched
//	    cloud-store write for the whole group)
//	IV  one coalesced state transfer (group bytes summed, protocol CPU
//	    charged once per endpoint pair) and one bulk directory remap with a
//	    single staleness epoch (Directory.MoveBatch)
//	V   one resume + one journal clear — after the move converged, so a
//	    crash mid-recovery never orphans the journal entry
//
// Migrations of disjoint groups run concurrently on a bounded worker pool
// behind a Future-style async API, so policy loops and server drains are not
// serialized on δ and transfer sleeps. Group disjointness is enforced by a
// member-claim table; overlapping requests fail fast with
// ErrAlreadyMigrating rather than queueing into a deadlock.
//
// Stop-window safety: holding every member simultaneously could cycle with
// an event that asynchronously activates several children (the per-member
// protocol never held more than one lock, so it never had this problem).
// The engine therefore acquires members top-down with a per-member timeout
// and, on collision, releases everything and retries after an exponential
// backoff — deadlock avoidance by preemption. See Engine.stopGroup.
package migration

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/metrics"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

// ManagerNode is the logical network location of the migration coordinator
// (the eManager service).
const ManagerNode = transport.NodeID(-2)

var (
	// ErrAlreadyMigrating is returned when a requested group overlaps a
	// migration still in flight.
	ErrAlreadyMigrating = errors.New("migration: context already migrating")
)

// Step identifies a journaled protocol step; the WAL records the last step
// durably completed so Recover can roll the group forward.
type Step int

// Protocol steps, in order.
const (
	StepPrepared    Step = 1 // intent journaled, destination prepared
	StepStopped     Step = 2 // group stopped, membership sealed
	StepRemapped    Step = 3 // new mapping published to cloud storage
	StepTransferred Step = 4 // state transferred, runtime remapped
)

// Config tunes the engine.
type Config struct {
	// Delta is the paper's δ: the settle time between stopping the source
	// and publishing the new mapping (step III). Charged once per group.
	Delta time.Duration
	// ProtocolWork is the CPU consumed on each endpoint per protocol round
	// (message handling, serialization); the batched protocol charges it
	// once per group instead of once per member.
	ProtocolWork time.Duration
	// MaxConcurrent bounds how many group migrations run at once on the
	// worker pool. Zero means 4.
	MaxConcurrent int
	// StopTimeout is the per-member acquisition timeout inside the group
	// stop window; a collision with an in-flight multi-context event
	// preempts the attempt, which is retried after a backoff. Zero means
	// 25ms.
	StopTimeout time.Duration
	// Transfer, when set, performs the group's state transfer in step IV —
	// the node runtime ships serialized member state over the transport mesh
	// to the destination node here. It runs inside the stop window, after
	// the bandwidth charge and before the directory remap; an error aborts
	// the migration with the WAL record left behind for Recover. nil keeps
	// the single-process semantics (state stays in the shared registry, so
	// there is nothing to move).
	Transfer TransferFunc
}

// TransferFunc moves a stopped group's state to the destination. totalBytes
// is the coalesced state size already charged against both NICs; the
// implementation must leave the group's TransferBytes accounting to the
// engine (it lands on both endpoints either way).
type TransferFunc func(members []ownership.ID, from, to cluster.ServerID, totalBytes int) error

// Hooks are test instrumentation points; leave zero in production.
type Hooks struct {
	// AfterStep runs after each journaled protocol step; returning an error
	// abandons the migration as a simulated eManager crash — the WAL entry
	// stays behind for Recover, and the group's stop locks are released (a
	// real source host times the dead coordinator out and reopens).
	AfterStep func(root ownership.ID, step Step) error
	// InStopWindow runs while the whole group is stopped, before membership
	// is re-snapshotted; tests create children here to pin that mid-stop
	// creations land on the destination.
	InStopWindow func(root ownership.ID)
}

// Engine runs batched group migrations over a runtime, journaling into a
// cloud store.
type Engine struct {
	cfg   Config
	rt    *core.Runtime
	store cloudstore.API

	// Hooks may be set before the engine is used (tests only).
	Hooks Hooks

	// sem bounds concurrently executing group migrations.
	sem chan struct{}

	// mu guards the member-claim table enforcing group disjointness.
	mu       sync.Mutex
	inflight map[ownership.ID]ownership.ID // member → claiming group root

	// Groups counts completed group moves; Members counts members moved
	// (one group of N counts N). GroupTime records wall time per group
	// move; StopTime records each group's full-stop window — the
	// event-unavailability cost of the move. StopWindows counts stop/δ
	// windows opened (the batched protocol opens one per group, the serial
	// baseline one per member). BytesMoved sums coalesced state transfer.
	Groups      metrics.Counter
	Members     metrics.Counter
	GroupTime   metrics.Histogram
	StopTime    metrics.Histogram
	StopWindows metrics.Counter
	// StopRetries counts preempted group stop attempts (lock collisions
	// with in-flight events).
	StopRetries metrics.Counter
	// Recovered counts groups rolled forward by Recover.
	Recovered metrics.Counter
	// BytesMoved sums state bytes transferred across all groups.
	BytesMoved metrics.Counter
}

// NewEngine creates an engine for a runtime, journaling into store (the
// local in-memory store, or a node runtime's RemoteStore over the mesh).
func NewEngine(rt *core.Runtime, store cloudstore.API, cfg Config) *Engine {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.StopTimeout <= 0 {
		cfg.StopTimeout = 25 * time.Millisecond
	}
	return &Engine{
		cfg:      cfg,
		rt:       rt,
		store:    store,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		inflight: make(map[ownership.ID]ownership.ID),
	}
}

// Runtime returns the engine's runtime.
func (e *Engine) Runtime() *core.Runtime { return e.rt }

// Future is the handle of an asynchronous group migration.
type Future struct {
	done chan struct{}
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (f *Future) complete(err error) {
	f.err = err
	close(f.done)
}

func completedFuture(err error) *Future {
	f := newFuture()
	f.complete(err)
	return f
}

// Wait blocks until the migration finishes and returns its error.
func (f *Future) Wait() error {
	<-f.done
	return f.err
}

// Done returns a channel closed when the migration finishes.
func (f *Future) Done() <-chan struct{} { return f.done }

// Err returns the migration's error; call only after Done is closed.
func (f *Future) Err() error { return f.err }

// Migrate moves one context (without its subtree) to another server using
// one batched protocol round. It blocks until the context is live on the
// destination.
func (e *Engine) Migrate(id ownership.ID, to cluster.ServerID) error {
	return e.MigrateAsync(id, to).Wait()
}

// MigrateAsync is Migrate without the wait: the returned Future completes
// when the context is live on the destination. Validation and the group
// claim happen synchronously, so a conflicting request fails fast.
func (e *Engine) MigrateAsync(id ownership.ID, to cluster.ServerID) *Future {
	return e.submit(id, to, false)
}

// MigrateGroup moves a context together with every transitively owned
// context currently co-located with it — one WAL record, one stop/δ window,
// one bulk remap, one coalesced transfer for the whole subtree. It blocks
// until the group is live on the destination.
func (e *Engine) MigrateGroup(root ownership.ID, to cluster.ServerID) error {
	return e.MigrateGroupAsync(root, to).Wait()
}

// MigrateGroupAsync is MigrateGroup without the wait. Validation and the
// group claim happen synchronously; the protocol runs on the engine's
// bounded worker pool, so disjoint groups migrate concurrently while
// overlapping requests fail fast with ErrAlreadyMigrating.
func (e *Engine) MigrateGroupAsync(root ownership.ID, to cluster.ServerID) *Future {
	return e.submit(root, to, true)
}

// submit validates, claims, and enqueues one group migration. The root is
// claimed before its placement is read: reading first would let a
// concurrent migration of the same root finish in between, leaving this
// request to run against a stale source server (splitting the group it
// would then compute against the old host).
func (e *Engine) submit(root ownership.ID, to cluster.ServerID, subtree bool) *Future {
	if err := e.claim(root, []ownership.ID{root}); err != nil {
		return completedFuture(err)
	}
	dir := e.rt.Directory()
	from, ok := dir.Locate(root)
	if !ok {
		e.unclaim(root)
		return completedFuture(fmt.Errorf("%v: %w", root, core.ErrUnknownContext))
	}
	if from == to {
		e.unclaim(root)
		return completedFuture(nil)
	}
	if _, ok := e.rt.Cluster().Server(to); !ok {
		e.unclaim(root)
		return completedFuture(fmt.Errorf("migrate to %v: %w", to, cluster.ErrNoSuchServer))
	}
	members := []ownership.ID{root}
	if subtree {
		// Placement is stable now: every member is pinned by the claims
		// extended below, and events never move contexts.
		members = e.groupMembers(root, from)
		if err := e.claimExtend(root, members); err != nil {
			e.unclaim(root)
			return completedFuture(err)
		}
	}
	f := newFuture()
	go func() {
		e.sem <- struct{}{}
		defer func() { <-e.sem }()
		defer e.unclaim(root)
		f.complete(e.run(root, from, to, members, subtree))
	}()
	return f
}

// groupMembers returns the migration group of root in top-down (BFS)
// ownership order: root first, then every transitive descendant currently
// co-located with it — including descendants reached through a remote
// intermediate (a Room's Item still moves with the Room when the Player
// between them lives elsewhere). The order approximates event
// path-activation order so the group stop acquires locks in a downward
// direction; the rare DAG shape where BFS inverts an ownership edge is
// absorbed by the stop's timeout-and-retry preemption.
func (e *Engine) groupMembers(root ownership.ID, from cluster.ServerID) []ownership.ID {
	view := e.rt.Graph().Snapshot()
	dir := e.rt.Directory()
	members := []ownership.ID{root}
	frontier := []ownership.ID{root}
	seen := map[ownership.ID]bool{root: true}
	for i := 0; i < len(frontier); i++ {
		children, err := view.Children(frontier[i])
		if err != nil {
			continue
		}
		for _, c := range children {
			if seen[c] {
				continue
			}
			seen[c] = true
			// Traverse through every descendant, co-located or not; only
			// co-located ones join the group.
			frontier = append(frontier, c)
			if srv, ok := dir.Locate(c); ok && srv == from {
				members = append(members, c)
			}
		}
	}
	return members
}

// claim marks every member as in flight under root, atomically: if any
// member is already claimed, nothing is claimed and ErrAlreadyMigrating is
// returned.
func (e *Engine) claim(root ownership.ID, members []ownership.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range members {
		if other, ok := e.inflight[id]; ok {
			return fmt.Errorf("%v (group %v): %w", id, other, ErrAlreadyMigrating)
		}
	}
	for _, id := range members {
		e.inflight[id] = root
	}
	return nil
}

// claimExtend atomically adds members to root's existing claim: if any is
// held by a different group, nothing changes and ErrAlreadyMigrating is
// returned. IDs already claimed under root (the root itself) pass through.
func (e *Engine) claimExtend(root ownership.ID, members []ownership.ID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range members {
		if other, ok := e.inflight[id]; ok && other != root {
			return fmt.Errorf("%v (group %v): %w", id, other, ErrAlreadyMigrating)
		}
	}
	for _, id := range members {
		e.inflight[id] = root
	}
	return nil
}

// tryClaimMember claims one additional member for an in-flight group (a
// child adopted inside the stop window). It reports false when the member
// belongs to another in-flight group, which then owns its move.
func (e *Engine) tryClaimMember(root, id ownership.ID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.inflight[id]; ok {
		return false
	}
	e.inflight[id] = root
	return true
}

// unclaimMember releases a single member claim (an adoption that could not
// be locked in time).
func (e *Engine) unclaimMember(id ownership.ID) {
	e.mu.Lock()
	delete(e.inflight, id)
	e.mu.Unlock()
}

// unclaim releases every member claimed under root.
func (e *Engine) unclaim(root ownership.ID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, r := range e.inflight {
		if r == root {
			delete(e.inflight, id)
		}
	}
}

// groupWAL is the journal record for one group migration. One record covers
// the whole group; Members is the membership sealed inside the stop window
// (step II), so a recovering eManager knows exactly which contexts the move
// covered even for children adopted mid-migration.
type groupWAL struct {
	Root    ownership.ID
	Members []ownership.ID
	From    cluster.ServerID
	To      cluster.ServerID
	Step    Step
}

func walKey(root ownership.ID) string { return fmt.Sprintf("wal/migration/%d", uint64(root)) }

// MapKey is the cloud-store key of a context's authoritative placement
// entry, and EncodeServerID its value encoding. Exported so the eManager's
// bulk PersistMapping and failure re-homing write the same schema the
// engine publishes in step III.
func MapKey(id ownership.ID) string { return fmt.Sprintf("map/%d", uint64(id)) }

// EncodeServerID renders a server ID for a mapping entry.
func EncodeServerID(s cluster.ServerID) []byte { return []byte(fmt.Sprintf("%d", int(s))) }

func encodeWAL(w groupWAL) []byte {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes()
}

func decodeWAL(b []byte) (groupWAL, error) {
	var w groupWAL
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w)
	return w, err
}

// journal persists the WAL record and fires the AfterStep crash hook.
func (e *Engine) journal(w groupWAL) error {
	if _, err := e.store.Put(walKey(w.Root), encodeWAL(w)); err != nil {
		return fmt.Errorf("journal step %d: %w", w.Step, err)
	}
	if e.Hooks.AfterStep != nil {
		if err := e.Hooks.AfterStep(w.Root, w.Step); err != nil {
			return err
		}
	}
	return nil
}

// run executes one batched protocol round for the whole group.
func (e *Engine) run(root ownership.ID, from, to cluster.ServerID, members []ownership.ID, subtree bool) error {
	start := time.Now()
	net := e.rt.Cluster().Net()
	srcServer, _ := e.rt.Cluster().Server(from)
	dstServer, ok := e.rt.Cluster().Server(to)
	if !ok {
		return fmt.Errorf("migrate to %v: %w", to, cluster.ErrNoSuchServer)
	}

	wal := groupWAL{Root: root, Members: members, From: from, To: to, Step: StepPrepared}

	// Step I: journal the group intent, then prepare the destination — it
	// creates queues for every member from one message — and await its ack.
	if err := e.journal(wal); err != nil {
		return err
	}
	if err := net.Hop(ManagerNode, to, 128); err != nil {
		return err
	}
	if err := net.Hop(to, ManagerNode, 64); err != nil {
		return err
	}

	// Step II: one stop exchange with the source for the whole group, then
	// the group stop window: every member exclusively activated at once.
	if err := net.Hop(ManagerNode, from, 128); err != nil {
		return err
	}
	if err := net.Hop(from, ManagerNode, 64); err != nil {
		return err
	}
	release, err := e.stopGroup(members)
	if err != nil {
		return fmt.Errorf("group stop %v: %w", root, err)
	}
	// release is re-wrapped when children are adopted below; the deferred
	// call must see the final value. Every layer is idempotent, so the
	// explicit resume in step V plus this safety net is fine.
	defer func() { release() }()
	stopStart := time.Now()

	if e.Hooks.InStopWindow != nil {
		e.Hooks.InStopWindow(root)
	}

	// Re-snapshot membership inside the stop window: a context created
	// under the group between the prepare snapshot and the stop would
	// otherwise be left behind on the source, splitting the group.
	if subtree {
		members, release, _ = e.adoptNewMembers(root, from, members, release)
	}
	wal.Step = StepStopped
	wal.Members = members
	if err := e.journal(wal); err != nil {
		return err
	}

	// Step III: one δ settle for the whole group, then publish the new
	// mapping — the journaled step plus one batched mapping write.
	time.Sleep(e.cfg.Delta)
	wal.Step = StepRemapped
	if err := e.journal(wal); err != nil {
		return err
	}
	mappings := make(map[string][]byte, len(members))
	for _, id := range members {
		mappings[MapKey(id)] = EncodeServerID(to)
	}
	if _, err := e.store.PutBatch(mappings); err != nil {
		return fmt.Errorf("publish mapping: %w", err)
	}

	// Step IV: coalesced state transfer. Group bytes are summed into one
	// bandwidth charge and the protocol CPU is charged once per endpoint
	// pair (the slower endpoint bounds the exchange), then the runtime
	// remaps the whole group in one directory update — a single staleness
	// epoch for every member.
	total := 0
	for _, id := range members {
		c, err := e.rt.Context(id)
		if err != nil {
			return err
		}
		total += c.StateBytes()
	}
	slow := dstServer
	if srcServer != nil && srcServer.Profile().Speed < dstServer.Profile().Speed {
		slow = srcServer
	}
	slow.Work(2 * e.cfg.ProtocolWork)
	mbps := dstServer.Profile().MigrationMBps
	if srcServer != nil && srcServer.Profile().MigrationMBps < mbps {
		mbps = srcServer.Profile().MigrationMBps
	}
	// The modeled NIC sleep stands in for the state copy only in
	// single-process mode; a configured Transfer hook moves the real bytes
	// over the real wire below, and charging both would double the group's
	// stop window.
	if mbps > 0 && total > 0 && e.cfg.Transfer == nil {
		time.Sleep(time.Duration(float64(total) / (mbps * 1e6) * float64(time.Second)))
	}
	if srcServer != nil {
		srcServer.AddTransferBytes(int64(total))
	}
	dstServer.AddTransferBytes(int64(total))
	// Final adoption sweep right before the remap: children created during
	// the δ and transfer sleeps were placed on the still-current source and
	// would be stranded there. Newborns carry factory state, so they ride
	// the move without re-running the transfer; their mappings are
	// published in one straggler batch.
	if subtree {
		var late []ownership.ID
		members, release, late = e.adoptNewMembers(root, from, members, release)
		if len(late) > 0 {
			lateMaps := make(map[string][]byte, len(late))
			for _, id := range late {
				lateMaps[MapKey(id)] = EncodeServerID(to)
			}
			if _, err := e.store.PutBatch(lateMaps); err != nil {
				return fmt.Errorf("publish straggler mapping: %w", err)
			}
		}
	}
	// Multi-process deployments ship the serialized member states to the
	// destination node here — after the final adoption sweep, so the frame
	// carries the complete membership (stragglers ride along with factory
	// state), and before this node's directory remap publishes the new
	// placement. A failed transfer aborts the migration with the WAL record
	// intact for Recover; the destination installs state and remaps its own
	// directory replica inside the handler.
	if e.cfg.Transfer != nil {
		if err := e.cfg.Transfer(members, from, to, total); err != nil {
			return fmt.Errorf("state transfer %v→%v: %w", from, to, err)
		}
	}
	if err := e.rt.RehostBatch(members, to); err != nil {
		return err
	}
	wal.Step = StepTransferred
	wal.Members = members
	if err := e.journal(wal); err != nil {
		return err
	}

	// Step V: the destination confirms and the whole group resumes —
	// release reopens every member at once — and only after the move has
	// converged does the journal entry clear, so a crash anywhere above
	// (including during recovery) still leaves a record to roll forward.
	stopDur := time.Since(stopStart)
	release()
	if err := e.store.Delete(walKey(root)); err != nil {
		return fmt.Errorf("journal step V: %w", err)
	}

	e.Groups.Inc()
	e.Members.Add(uint64(len(members)))
	e.StopWindows.Inc()
	e.StopTime.Record(stopDur)
	e.GroupTime.Record(time.Since(start))
	e.BytesMoved.Add(uint64(total))
	return nil
}

// adoptNewMembers re-snapshots the group and folds in members that appeared
// since the last snapshot: each is claimed, exclusively locked (their
// queues are empty or nearly so — events routed at them queue on their
// locked ancestors), and appended to the member list and the release chain.
// A newcomer claimed by another in-flight group is skipped (that group owns
// its move), as is one still held by a straggler event (left behind with
// the per-member protocol's semantics rather than failing the group).
// Returns the grown member list, the re-wrapped release, and the adoptees.
func (e *Engine) adoptNewMembers(root ownership.ID, from cluster.ServerID, members []ownership.ID, release func()) ([]ownership.ID, func(), []ownership.ID) {
	have := make(map[ownership.ID]bool, len(members))
	for _, id := range members {
		have[id] = true
	}
	var adopted []ownership.ID
	for _, id := range e.groupMembers(root, from) {
		if have[id] {
			continue
		}
		if !e.tryClaimMember(root, id) {
			continue
		}
		rel, err := e.rt.LockForMigrationTimeout(id, e.cfg.StopTimeout)
		if err != nil {
			e.unclaimMember(id)
			continue
		}
		prev := release
		release = func() { rel(); prev() }
		members = append(members, id)
		adopted = append(adopted, id)
	}
	return members, release, adopted
}

// stopGroup opens the group stop window: every member exclusively activated
// simultaneously. Attempts that collide with an in-flight multi-context
// event are preempted by the per-member timeout, fully released, and
// retried after an exponential backoff (see the package comment for why
// this cannot simply block).
func (e *Engine) stopGroup(members []ownership.ID) (func(), error) {
	backoff := 500 * time.Microsecond
	for {
		release, err := e.rt.LockGroupForMigration(members, e.cfg.StopTimeout)
		if err == nil {
			return release, nil
		}
		if !errors.Is(err, core.ErrAcquireTimeout) {
			return nil, err
		}
		e.StopRetries.Inc()
		time.Sleep(backoff)
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
}

// Recover scans the migration journal and rolls forward every group
// migration a crashed eManager left behind. The WAL record is deleted only
// after the group's move has converged on the destination, so a second
// crash during recovery loses nothing: the next Recover finds the record
// again and finishes the job.
func (e *Engine) Recover() error {
	keys, err := e.store.List("wal/migration/")
	if err != nil {
		return err
	}
	for _, k := range keys {
		raw, _, err := e.store.Get(k)
		if err != nil {
			continue
		}
		wal, err := decodeWAL(raw)
		if err != nil {
			return fmt.Errorf("corrupt WAL %q: %w", k, err)
		}
		if err := e.recoverGroup(wal); err != nil {
			return fmt.Errorf("recover group %v: %w", wal.Root, err)
		}
		// Only now, with every member live on the destination, does the
		// journal entry clear. A re-run that went through the full protocol
		// already cleared it in its own step V.
		if err := e.store.Delete(k); err != nil && !errors.Is(err, cloudstore.ErrNotFound) {
			return err
		}
		e.Recovered.Inc()
	}
	return nil
}

// recoverGroup converges one journaled group onto its destination. Whether
// the crash hit before or after the mapping was published, re-running the
// batched protocol converges: the runtime-side move happens atomically in
// step IV under the group stop. Members sealed in the WAL that no longer
// sit with the root (crash between partial effects) are swept individually.
func (e *Engine) recoverGroup(w groupWAL) error {
	dir := e.rt.Directory()
	if cur, ok := dir.Locate(w.Root); ok && cur != w.To {
		if err := e.MigrateGroup(w.Root, w.To); err != nil {
			return err
		}
	}
	// Sweep sealed members the root's re-run did not cover (no longer
	// co-located with the root).
	for _, id := range w.Members {
		if cur, ok := dir.Locate(id); ok && cur != w.To {
			if err := e.Migrate(id, w.To); err != nil {
				return err
			}
		}
	}
	return nil
}
