package migration

import (
	"errors"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

type counterState struct {
	N   int
	Pad []byte
}

func (s *counterState) StateBytes() int { return 64 + len(s.Pad) }

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	room := s.MustDeclareClass("Room", func() any { return &counterState{} })
	room.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counterState)
		st.N++
		return st.N, nil
	})
	room.MustDeclareMethod("get", func(call schema.Call, args []any) (any, error) {
		return call.State().(*counterState).N, nil
	}, schema.RO())
	item := s.MustDeclareClass("Item", func() any { return &counterState{} })
	item.MustDeclareMethod("inc", func(call schema.Call, args []any) (any, error) {
		st := call.State().(*counterState)
		st.N++
		return st.N, nil
	})
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	return s
}

type fixture struct {
	rt     *core.Runtime
	store  *cloudstore.Store
	engine *Engine
}

func newFixture(t *testing.T, nServers int) *fixture {
	t.Helper()
	s := testSchema(t)
	cl := cluster.New(transport.NullNetwork{})
	for i := 0; i < nServers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	rt, err := core.New(s, ownership.NewGraph(), cl, core.Config{AcquireTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	store := cloudstore.New()
	engine := NewEngine(rt, store, Config{Delta: time.Millisecond})
	return &fixture{rt: rt, store: store, engine: engine}
}

// group creates a Room with n Items on the given server and returns the
// root plus all member ids.
func (f *fixture) group(t *testing.T, srv cluster.ServerID, n int) (ownership.ID, []ownership.ID) {
	t.Helper()
	root, err := f.rt.CreateContextOn(srv, "Room")
	if err != nil {
		t.Fatal(err)
	}
	members := []ownership.ID{root}
	for i := 0; i < n; i++ {
		item, err := f.rt.CreateContext("Item", root)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, item)
	}
	return root, members
}

func (f *fixture) server(t *testing.T, i int) cluster.ServerID {
	t.Helper()
	return f.rt.Cluster().Servers()[i].ID()
}

// TestGroupMigrationOneProtocolRound pins the batching contract: a whole
// group moves with one WAL round and one stop window, and the number of
// cloud-store write operations does not grow with group size.
func TestGroupMigrationOneProtocolRound(t *testing.T) {
	for _, size := range []int{0, 3, 9} {
		f := newFixture(t, 2)
		root, members := f.group(t, f.server(t, 0), size)

		_, w0 := f.store.Stats()
		if err := f.engine.MigrateGroup(root, f.server(t, 1)); err != nil {
			t.Fatal(err)
		}
		_, w1 := f.store.Stats()

		for _, id := range members {
			if srv, _ := f.rt.Directory().Locate(id); srv != f.server(t, 1) {
				t.Fatalf("size %d: member %v on %v; want destination", size, id, srv)
			}
		}
		// 4 journaled steps + 1 batched mapping write + 1 journal clear,
		// independent of group size.
		if got := w1 - w0; got != 6 {
			t.Fatalf("size %d: %d store writes; want 6 (one protocol round)", size, got)
		}
		if f.engine.Groups.Value() != 1 || f.engine.StopWindows.Value() != 1 {
			t.Fatalf("size %d: groups=%d stopWindows=%d; want 1/1",
				size, f.engine.Groups.Value(), f.engine.StopWindows.Value())
		}
		if int(f.engine.Members.Value()) != size+1 {
			t.Fatalf("size %d: members=%d; want %d", size, f.engine.Members.Value(), size+1)
		}
		if keys, _ := f.store.List("wal/"); len(keys) != 0 {
			t.Fatalf("size %d: wal left behind: %v", size, keys)
		}
	}
}

// TestChildCreatedInStopWindowMigrates pins the re-snapshot: a context
// created under a migrating root after the group was stopped must be adopted
// into the move and land on the destination, not stay orphaned on the
// source.
func TestChildCreatedInStopWindowMigrates(t *testing.T) {
	f := newFixture(t, 2)
	root, _ := f.group(t, f.server(t, 0), 2)
	var late ownership.ID
	f.engine.Hooks.InStopWindow = func(r ownership.ID) {
		// Runs while every member is exclusively held, before membership is
		// sealed into the WAL.
		id, err := f.rt.CreateContext("Item", root)
		if err != nil {
			t.Errorf("create in stop window: %v", err)
			return
		}
		late = id
	}
	if err := f.engine.MigrateGroup(root, f.server(t, 1)); err != nil {
		t.Fatal(err)
	}
	if late == ownership.None {
		t.Fatal("stop-window hook did not run")
	}
	if srv, _ := f.rt.Directory().Locate(late); srv != f.server(t, 1) {
		t.Fatalf("stop-window child on %v; want destination %v (left behind)", srv, f.server(t, 1))
	}
	if int(f.engine.Members.Value()) != 4 {
		t.Fatalf("members moved = %d; want 4 (root + 2 items + adopted child)", f.engine.Members.Value())
	}
	// The adopted child resumes normally.
	if _, err := f.rt.Submit(late, "inc"); err != nil {
		t.Fatal(err)
	}
}

// TestChildCreatedAfterSealMigrates pins the final adoption sweep: a
// context created after membership was sealed (during the δ settle or the
// state transfer) is still swept into the move right before the bulk remap
// instead of being stranded on the source.
func TestChildCreatedAfterSealMigrates(t *testing.T) {
	f := newFixture(t, 2)
	root, _ := f.group(t, f.server(t, 0), 2)
	var straggler ownership.ID
	f.engine.Hooks.AfterStep = func(_ ownership.ID, s Step) error {
		if s == StepRemapped && straggler == ownership.None {
			// Runs after the sealed membership was journaled and the
			// mapping published, before the transfer and remap.
			id, err := f.rt.CreateContext("Item", root)
			if err != nil {
				t.Errorf("create after seal: %v", err)
				return nil
			}
			straggler = id
		}
		return nil
	}
	if err := f.engine.MigrateGroup(root, f.server(t, 1)); err != nil {
		t.Fatal(err)
	}
	if straggler == ownership.None {
		t.Fatal("post-seal hook did not run")
	}
	if srv, _ := f.rt.Directory().Locate(straggler); srv != f.server(t, 1) {
		t.Fatalf("post-seal child on %v; want destination %v (stranded)", srv, f.server(t, 1))
	}
	// Its mapping entry was published too.
	raw, _, err := f.store.Get(MapKey(straggler))
	if err != nil {
		t.Fatalf("straggler mapping: %v", err)
	}
	if string(raw) != string(EncodeServerID(f.server(t, 1))) {
		t.Fatalf("straggler mapping = %q", raw)
	}
	if _, err := f.rt.Submit(straggler, "inc"); err != nil {
		t.Fatal(err)
	}
}

// TestGroupSpansRemoteIntermediate pins membership discovery through a
// descendant hosted elsewhere: a co-located grandchild behind a remote
// child still moves with the root.
func TestGroupSpansRemoteIntermediate(t *testing.T) {
	f := newFixture(t, 3)
	root, err := f.rt.CreateContextOn(f.server(t, 0), "Room")
	if err != nil {
		t.Fatal(err)
	}
	mid, err := f.rt.CreateContextOn(f.server(t, 1), "Item", root)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := f.rt.CreateContextOn(f.server(t, 0), "Item", mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.engine.MigrateGroup(root, f.server(t, 2)); err != nil {
		t.Fatal(err)
	}
	if srv, _ := f.rt.Directory().Locate(root); srv != f.server(t, 2) {
		t.Fatalf("root on %v; want destination", srv)
	}
	if srv, _ := f.rt.Directory().Locate(leaf); srv != f.server(t, 2) {
		t.Fatalf("leaf on %v; want destination (group must span the remote intermediate)", srv)
	}
	if srv, _ := f.rt.Directory().Locate(mid); srv != f.server(t, 1) {
		t.Fatalf("remote intermediate moved to %v; it was not co-located", srv)
	}
}

// TestOverlappingGroupFailsFast pins disjointness: while a group is in
// flight, migrating any of its members (or a group containing one) fails
// with ErrAlreadyMigrating instead of queueing into the stop window.
func TestOverlappingGroupFailsFast(t *testing.T) {
	f := newFixture(t, 3)
	root, members := f.group(t, f.server(t, 0), 2)

	inStop := make(chan struct{})
	unblock := make(chan struct{})
	f.engine.Hooks.InStopWindow = func(ownership.ID) {
		close(inStop)
		<-unblock
	}
	fut := f.engine.MigrateGroupAsync(root, f.server(t, 1))
	<-inStop

	if err := f.engine.Migrate(members[1], f.server(t, 2)); !errors.Is(err, ErrAlreadyMigrating) {
		t.Fatalf("overlapping member migrate: err = %v; want ErrAlreadyMigrating", err)
	}
	if err := f.engine.MigrateGroup(root, f.server(t, 2)); !errors.Is(err, ErrAlreadyMigrating) {
		t.Fatalf("overlapping group migrate: err = %v; want ErrAlreadyMigrating", err)
	}
	close(unblock)
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	f.engine.Hooks.InStopWindow = nil
	// After completion the claims are gone: a follow-up move works.
	if err := f.engine.MigrateGroup(root, f.server(t, 2)); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateValidation covers the synchronous fast-fail paths of the async
// API.
func TestMigrateValidation(t *testing.T) {
	f := newFixture(t, 2)
	root, _ := f.group(t, f.server(t, 0), 0)

	if err := f.engine.MigrateGroup(root, f.server(t, 0)); err != nil {
		t.Fatalf("same-server move: %v; want nil no-op", err)
	}
	if f.engine.Groups.Value() != 0 {
		t.Fatal("no-op move must not count")
	}
	if err := f.engine.Migrate(ownership.ID(9999), f.server(t, 1)); !errors.Is(err, core.ErrUnknownContext) {
		t.Fatalf("unknown context: %v; want ErrUnknownContext", err)
	}
	if err := f.engine.Migrate(root, cluster.ServerID(99)); !errors.Is(err, cluster.ErrNoSuchServer) {
		t.Fatalf("unknown server: %v; want ErrNoSuchServer", err)
	}
}

// TestGroupMoveIsAtomicInDirectory pins the single-epoch remap at every
// protocol-visible point: throughout the stop window the whole group is
// still on the source, and by the time the transferred step is journaled
// the whole group is already on the destination — there is no protocol
// state in which the group is split across servers (the per-member loop
// kept it split for the entire tail of the loop).
func TestGroupMoveIsAtomicInDirectory(t *testing.T) {
	f := newFixture(t, 2)
	root, members := f.group(t, f.server(t, 0), 5)
	src, dst := f.server(t, 0), f.server(t, 1)

	on := func(want cluster.ServerID) (int, int) {
		hit, miss := 0, 0
		for _, id := range members {
			if srv, ok := f.rt.Directory().Locate(id); ok && srv == want {
				hit++
			} else {
				miss++
			}
		}
		return hit, miss
	}
	f.engine.Hooks.InStopWindow = func(ownership.ID) {
		if hit, miss := on(src); miss != 0 {
			t.Errorf("stop window: %d/%d members already off the source", miss, hit+miss)
		}
	}
	f.engine.Hooks.AfterStep = func(_ ownership.ID, s Step) error {
		switch s {
		case StepRemapped:
			// Mapping published to cloud storage, runtime not yet remapped.
			if hit, miss := on(src); miss != 0 {
				t.Errorf("after remap step: %d/%d members already off the source", miss, hit+miss)
			}
		case StepTransferred:
			// The bulk remap happened: the whole group flipped together.
			if hit, miss := on(dst); miss != 0 {
				t.Errorf("after transfer step: %d/%d members not on destination", miss, hit+miss)
			}
		}
		return nil
	}
	if err := f.engine.MigrateGroup(root, dst); err != nil {
		t.Fatal(err)
	}
	if hit, miss := on(dst); miss != 0 {
		t.Fatalf("after move: %d/%d members not on destination", miss, hit+miss)
	}
}

// TestRecoverAtEveryStep crashes the engine after each journaled step and
// verifies a fresh engine over the same store converges the whole group and
// clears the journal only afterwards.
func TestRecoverAtEveryStep(t *testing.T) {
	for step := StepPrepared; step <= StepTransferred; step++ {
		f := newFixture(t, 2)
		root, members := f.group(t, f.server(t, 0), 3)

		crash := errors.New("crash")
		f.engine.Hooks.AfterStep = func(_ ownership.ID, s Step) error {
			if s == step {
				return crash
			}
			return nil
		}
		if err := f.engine.MigrateGroup(root, f.server(t, 1)); !errors.Is(err, crash) {
			t.Fatalf("step %d: err = %v; want crash", step, err)
		}
		if keys, _ := f.store.List("wal/migration/"); len(keys) != 1 {
			t.Fatalf("step %d: wal keys = %v; want 1", step, keys)
		}

		e2 := NewEngine(f.rt, f.store, Config{Delta: time.Millisecond})
		if err := e2.Recover(); err != nil {
			t.Fatalf("step %d: recover: %v", step, err)
		}
		for _, id := range members {
			if srv, _ := f.rt.Directory().Locate(id); srv != f.server(t, 1) {
				t.Fatalf("step %d: member %v on %v; want destination", step, id, srv)
			}
		}
		if keys, _ := f.store.List("wal/migration/"); len(keys) != 0 {
			t.Fatalf("step %d: wal not cleared: %v", step, keys)
		}
		if e2.Recovered.Value() != 1 {
			t.Fatalf("step %d: recovered = %d; want 1", step, e2.Recovered.Value())
		}
		// Every member resumes.
		for _, id := range members {
			if _, err := f.rt.Submit(id, "inc"); err != nil {
				t.Fatalf("step %d: post-recovery event on %v: %v", step, id, err)
			}
		}
	}
}
