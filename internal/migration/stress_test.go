package migration

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aeon/internal/ownership"
)

// TestConcurrentDisjointGroupMigrationsRace drives several disjoint groups
// through back-and-forth migrations on the engine's worker pool while
// client goroutines hammer every member with events. Run under -race this
// stresses the group stop window, the atomic batch remap, and the claim
// table; the final per-context counters pin that no event was lost or
// double-applied across any number of concurrent moves (§ 5.2's
// correctness property, batched).
func TestConcurrentDisjointGroupMigrationsRace(t *testing.T) {
	const (
		nGroups       = 4
		itemsPerGroup = 3
		rounds        = 6
	)
	f := newFixture(t, nGroups)
	roots := make([]ownership.ID, nGroups)
	groups := make([][]ownership.ID, nGroups)
	for g := 0; g < nGroups; g++ {
		roots[g], groups[g] = f.group(t, f.server(t, g), itemsPerGroup)
	}

	stop := make(chan struct{})
	var incs [nGroups][itemsPerGroup + 1]atomic.Int64
	var wg sync.WaitGroup
	// One client per group, cycling over its members.
	for g := 0; g < nGroups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := i % len(groups[g])
				if _, err := f.rt.Submit(groups[g][m], "inc"); err != nil {
					t.Errorf("group %d inc: %v", g, err)
					return
				}
				incs[g][m].Add(1)
			}
		}(g)
	}

	// Migrate all groups concurrently, rotating each around the cluster.
	for r := 0; r < rounds; r++ {
		futures := make([]*Future, nGroups)
		for g := 0; g < nGroups; g++ {
			to := f.server(t, (g+r+1)%nGroups)
			futures[g] = f.engine.MigrateGroupAsync(roots[g], to)
		}
		for g, fut := range futures {
			if err := fut.Wait(); err != nil && !errors.Is(err, ErrAlreadyMigrating) {
				t.Fatalf("round %d group %d: %v", r, g, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Every group ends whole (co-located) and every event is accounted for.
	for g := 0; g < nGroups; g++ {
		rootSrv, ok := f.rt.Directory().Locate(roots[g])
		if !ok {
			t.Fatalf("group %d root unplaced", g)
		}
		for _, id := range groups[g] {
			if srv, _ := f.rt.Directory().Locate(id); srv != rootSrv {
				t.Errorf("group %d member %v on %v; want %v (group split)", g, id, srv, rootSrv)
			}
		}
		for m, id := range groups[g] {
			res, err := f.rt.Submit(id, "inc")
			if err != nil {
				t.Fatalf("final inc group %d member %d: %v", g, m, err)
			}
			want := int(incs[g][m].Load()) + 1
			if res.(int) != want {
				t.Errorf("group %d member %d count = %v; want %d (events lost or doubled)",
					g, m, res, want)
			}
		}
	}
	if f.engine.Groups.Value() == 0 {
		t.Fatal("no group migrations completed")
	}
}

// TestDisjointGroupsOverlapInTime pins the pipelining: with a worker pool
// wider than one, two disjoint group migrations must overlap their stop
// windows instead of queueing behind each other's δ and transfer sleeps.
func TestDisjointGroupsOverlapInTime(t *testing.T) {
	f := newFixture(t, 4)
	rootA, _ := f.group(t, f.server(t, 0), 2)
	rootB, _ := f.group(t, f.server(t, 1), 2)

	var mu sync.Mutex
	inStop := map[ownership.ID]bool{}
	overlapped := false
	ready := make(chan struct{}, 2)
	f.engine.Hooks.InStopWindow = func(root ownership.ID) {
		mu.Lock()
		inStop[root] = true
		if len(inStop) == 2 {
			overlapped = true
		}
		mu.Unlock()
		ready <- struct{}{}
		// Hold the window open long enough for the other group to arrive.
		deadline := time.After(2 * time.Second)
		for {
			mu.Lock()
			both := overlapped
			mu.Unlock()
			if both {
				return
			}
			select {
			case <-deadline:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}
	fa := f.engine.MigrateGroupAsync(rootA, f.server(t, 2))
	fb := f.engine.MigrateGroupAsync(rootB, f.server(t, 3))
	if err := fa.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Wait(); err != nil {
		t.Fatal(err)
	}
	if !overlapped {
		t.Fatal("disjoint group stop windows never overlapped; migrations are serialized")
	}
}
