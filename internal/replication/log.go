// Package replication makes the ownership graph and cluster map a
// replicated state machine: every structural mutation — context creation
// and destruction, ownership-edge changes, server membership — is captured
// as a schema-registered wire record, appended to an ordered, durable log
// in the cloud store, and applied in sequence order by every node's local
// replica. Log order, not process-local call order, assigns context IDs, so
// a context created at runtime on one node is addressable from every other
// node without coordination beyond the log itself.
//
// Log layout (cloud-store keys):
//
//	replog/rec/<seq>  — one Record per sequence number, written exactly
//	                    once with CAS(create): the record key is the
//	                    linearization point, so two racing appenders can
//	                    never both claim a sequence and no sequence can be
//	                    skipped (a reader that misses rec/N can never
//	                    observe rec/N+1 as committed work by this writer).
//	replog/head       — CAS-advanced, forward-only high-water mark of the
//	                    published sequence. It carries no correctness:
//	                    appenders and tailers always probe rec keys (which
//	                    is why a crash between the record write and the
//	                    head advance costs a probe, never a hole). It
//	                    exists as the log's durable tail marker —
//	                    observability for operators, and the anchor a
//	                    future log-compaction pass needs to know how far
//	                    the fleet has published.
//
// Append protocol: catch the local replica up to the durable tail, guess
// seq = applied+1, CAS-create the record there; a version-mismatch means
// another writer claimed the slot — re-read (apply the interloper), re-base,
// retry with backoff (cloudstore.Retry). Batching amortizes contention: all
// mutations queued while an append is in flight ride the next record as one
// CAS round.
//
// Applies are deterministic (every replica executes the same mutations in
// the same order against the same starting state) and idempotent at the
// record level (a replica tracks its applied sequence and never re-executes
// a record, so duplicated notify frames or concurrent catch-up calls are
// harmless).
//
// Virtual-join contexts are deliberately NOT logged: they are sequencing
// artifacts minted lazily on the read path, and logging them would put a
// store round trip on event admission. Instead they allocate from the
// reserved ownership.VirtualIDBase band, so each process can mint its own
// in local query order without ever colliding with a replicated ID.
package replication

import (
	"fmt"
	"strconv"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// Op identifies one structural mutation kind.
type Op uint8

// The replicated mutation set: everything that changes the shape of the
// ownership network or the cluster map.
const (
	// OpNewContext creates a context (class, owners, placement). The apply
	// assigns its ID from the replica's allocator — identical on every node
	// because applies run in log order.
	OpNewContext Op = iota + 1
	// OpAddEdge adds a direct-ownership edge.
	OpAddEdge
	// OpRemoveEdge removes a direct-ownership edge.
	OpRemoveEdge
	// OpDetach removes every edge touching Target and deletes it (the
	// runtime's DestroyContext).
	OpDetach
	// OpRemoveContext deletes an edgeless context.
	OpRemoveContext
	// OpAddServer provisions a server with Profile ("scale out").
	OpAddServer
	// OpRemoveServer releases Server ("scale in"). Applied force-removed:
	// the drain was validated by the capturing node.
	OpRemoveServer
)

// String renders the op for logs and errors.
func (o Op) String() string {
	switch o {
	case OpNewContext:
		return "new-context"
	case OpAddEdge:
		return "add-edge"
	case OpRemoveEdge:
		return "remove-edge"
	case OpDetach:
		return "detach"
	case OpRemoveContext:
		return "remove-context"
	case OpAddServer:
		return "add-server"
	case OpRemoveServer:
		return "remove-server"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mutation is one captured structural mutation. Only the fields relevant to
// Op are set.
type Mutation struct {
	Op Op
	// Class and Owners describe a new context; Server is its placement (or
	// the subject of server-membership ops).
	Class  string
	Owners []ownership.ID
	Server cluster.ServerID
	// Parent and Child name an edge.
	Parent, Child ownership.ID
	// Target names the context of detach/remove ops.
	Target ownership.ID
	// Profile describes the server added by OpAddServer.
	Profile cluster.Profile
}

// Record is one durable log entry: a batch of mutations appended in one CAS
// round by one node.
type Record struct {
	Seq    uint64
	Origin transport.NodeID
	Muts   []Mutation
}

func init() {
	// Log records travel through the shared wire registry like every other
	// cross-process payload.
	schema.RegisterWireTypes(Record{}, Mutation{}, cluster.Profile{})
}

const (
	headKey   = "replog/head"
	recPrefix = "replog/rec/"
)

// recKey renders the storage key of the record at seq (zero-padded so List
// returns records in sequence order).
func recKey(seq uint64) string { return fmt.Sprintf("%s%020d", recPrefix, seq) }

// encodeRecord renders a record for storage.
func encodeRecord(rec Record) ([]byte, error) {
	b, err := schema.EncodeWire(rec)
	if err != nil {
		return nil, fmt.Errorf("replication: encode record %d: %w", rec.Seq, err)
	}
	return b, nil
}

// decodeRecord parses a stored record.
func decodeRecord(b []byte) (Record, error) {
	v, err := schema.DecodeWire(b)
	if err != nil {
		return Record{}, fmt.Errorf("replication: decode record: %w", err)
	}
	rec, ok := v.(Record)
	if !ok {
		return Record{}, fmt.Errorf("replication: record has wire type %T", v)
	}
	return rec, nil
}

// readHead returns the head hint (0 when the log is empty or the hint has
// never been written).
func readHead(store cloudstore.API) uint64 {
	raw, _, err := store.Get(headKey)
	if err != nil {
		return 0
	}
	n, err := strconv.ParseUint(string(raw), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// advanceHead moves the published high-water mark forward to at least seq.
// Forward-only and best-effort: the mark carries no correctness (readers
// probe record keys), so after a few contended rounds — or on an
// unavailable store — it simply gives up.
func advanceHead(store cloudstore.API, seq uint64) {
	_ = cloudstore.Retry(cloudstore.RetryPolicy{Attempts: 4}, func() error {
		raw, ver, err := store.Get(headKey)
		if err == nil {
			cur, perr := strconv.ParseUint(string(raw), 10, 64)
			if perr == nil && cur >= seq {
				return nil // someone already published past us
			}
		} else {
			ver = 0 // create
		}
		_, err = store.CAS(headKey, ver, []byte(strconv.FormatUint(seq, 10)))
		return err
	})
}
