package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

var (
	// ErrClosed is returned when submitting to a closed plane.
	ErrClosed = errors.New("replication: plane closed")
	// ErrReplicaLagging is returned when WaitFor times out before the local
	// replica reaches the requested sequence.
	ErrReplicaLagging = errors.New("replication: replica lagging behind requested sequence")
	// ErrVirtualID is returned when a captured mutation names a virtual-join
	// context. Virtuals are minted per process, in local query order — the
	// same ID names different contexts on different nodes (or none), so a
	// logged mutation referencing one could never apply deterministically.
	ErrVirtualID = errors.New("replication: virtual-join contexts are process-local and cannot appear in replicated mutations")
)

// maxAppendBatch bounds how many queued mutations ride one log record (one
// CAS round). Contention on the log amortizes across everything queued
// while the previous append was in flight.
const maxAppendBatch = 64

// Config tunes a replication plane.
type Config struct {
	// Origin identifies this node in appended records; apply results are
	// delivered back to waiters only for records this plane originated, so
	// two planes of one deployment must not share an origin.
	Origin transport.NodeID
	// Poll is the tailer's fallback interval for discovering records whose
	// notify hint was lost. Zero means 200ms. Steady-state propagation is
	// one notify frame; the poll only bounds staleness under frame loss.
	Poll time.Duration
	// Retry overrides the append retry/backoff policy (zero value:
	// cloudstore.DefaultRetry).
	Retry cloudstore.RetryPolicy
}

// Result is the apply outcome of one mutation: the ID the log sequence
// assigned (context creations), the server ID (server additions), and the
// deterministic apply error, if any.
type Result struct {
	ID     ownership.ID
	Server cluster.ServerID
	Err    error
}

type outcome struct {
	res Result
	err error
}

type appendReq struct {
	mut Mutation
	out chan outcome
}

// Plane is one node's attachment to the replicated ownership-metadata
// control plane: it captures this process's structural mutations into the
// log (implementing core.Replicator) and tails the log to keep the local
// ownership-graph and cluster replicas in lockstep with the fleet.
type Plane struct {
	rt     *core.Runtime
	store  cloudstore.API
	cfg    Config
	notify func(seq uint64)

	// applyMu serializes log applies: the appender, the tailer, and
	// CatchUp callers all funnel through it, so every record applies
	// exactly once, in sequence order.
	applyMu sync.Mutex

	// mu guards applied/closed; cond wakes WaitFor waiters.
	mu      sync.Mutex
	cond    *sync.Cond
	applied uint64
	closed  bool

	waiterMu sync.Mutex
	waiters  map[uint64]chan []Result

	pending chan *appendReq
	wake    chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once

	// lastErr holds the most recent CatchUp failure (cleared on success):
	// the tailer retries silently, so a *persistent* failure — store down,
	// or a terminal one like an undecodable record wedging the replica at
	// its sequence — is surfaced here instead of vanishing.
	lastErr atomic.Pointer[error]

	appends, conflicts, applies, notifies atomic.Uint64

	// paused suspends the tailer (fault injection: a paused replica
	// serves a stale view and its lag-gated submits block, exactly like a
	// node whose notify links and poll reads stall). The node's own
	// appends still apply — pause models a lagging *tailer*, not a dead
	// store link.
	paused atomic.Bool

	// headSeen is the highest log sequence this replica has been told
	// exists (notify hints and its own appends); applied can lag it while
	// the tailer catches up, and head-applied is the replica's lag.
	headSeen atomic.Uint64
}

var _ core.Replicator = (*Plane)(nil)

// New builds a plane for a runtime over the (authoritative or mesh-backed)
// cloud store. Call SetNotify before Start to wire the propagation hint,
// then Start to begin tailing; the plane is typically also installed on the
// runtime with rt.SetReplicator(p).
func New(rt *core.Runtime, store cloudstore.API, cfg Config) *Plane {
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Retry == (cloudstore.RetryPolicy{}) {
		cfg.Retry = cloudstore.DefaultRetry()
	}
	p := &Plane{
		rt:      rt,
		store:   store,
		cfg:     cfg,
		waiters: make(map[uint64]chan []Result),
		pending: make(chan *appendReq, maxAppendBatch),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// SetNotify installs the propagation hint: fn is called (on the appender
// goroutine) with each sequence this plane appends, and should hint the
// peers — best-effort; the tailer's poll covers lost hints. Call before
// Start.
func (p *Plane) SetNotify(fn func(seq uint64)) { p.notify = fn }

// Start launches the appender and tailer and synchronously replays the log
// into the local replica, so a (re)joining node has caught up before it
// serves. The returned error reports an unreachable or failing store —
// callers whose store node may not be up yet can treat it as advisory (the
// tailer keeps retrying).
func (p *Plane) Start() error {
	p.wg.Add(2)
	go p.appendLoop()
	go p.tailLoop()
	return p.CatchUp()
}

// Close stops the plane's goroutines. In-flight submissions fail with
// ErrClosed (their mutations may still have been appended — shutdown during
// an append is ambiguous like any distributed commit with a lost ack).
func (p *Plane) Close() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Applied returns the sequence of the last log record applied locally.
func (p *Plane) Applied() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

// Appends returns how many records this plane appended.
func (p *Plane) Appends() uint64 { return p.appends.Load() }

// Conflicts returns how many CAS append conflicts this plane re-based
// through.
func (p *Plane) Conflicts() uint64 { return p.conflicts.Load() }

// Applies returns how many log records this replica applied (own and
// foreign).
func (p *Plane) Applies() uint64 { return p.applies.Load() }

// Notified returns how many notify hints reached this plane (Poke calls).
func (p *Plane) Notified() uint64 { return p.notifies.Load() }

// Poke hints that the log has reached at least seq: a node received a
// replicate-notify frame. Idempotent and non-blocking — duplicated or
// reordered frames at worst wake the tailer needlessly, and a dropped frame
// is covered by the poll.
func (p *Plane) Poke(seq uint64) {
	p.notifies.Add(1)
	p.observeHead(seq)
	if p.Applied() >= seq {
		return
	}
	p.kick()
}

// observeHead raises the head high-water mark to at least seq.
func (p *Plane) observeHead(seq uint64) {
	for {
		cur := p.headSeen.Load()
		if seq <= cur || p.headSeen.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// Head returns the highest log sequence this replica knows exists — at
// least Applied, advanced further by notify hints. Head-Applied is the
// replica's current lag.
func (p *Plane) Head() uint64 {
	if h, a := p.headSeen.Load(), p.Applied(); h > a {
		return h
	} else {
		return a
	}
}

func (p *Plane) kick() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// WaitFor blocks until the local replica has applied at least seq, kicking
// an immediate catch-up. It returns ErrReplicaLagging when the timeout
// elapses first — the admission gate for submits carrying a sequence the
// replica has not reached.
func (p *Plane) WaitFor(seq uint64, timeout time.Duration) error {
	if p.Applied() >= seq {
		return nil
	}
	p.kick()
	deadline := time.Now().Add(timeout)
	expired := time.AfterFunc(timeout, func() {
		// Broadcast under mu so a waiter can never check the clock, decide
		// to sleep, and miss this wakeup.
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer expired.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.applied < seq && !p.closed {
		if !time.Now().Before(deadline) {
			return fmt.Errorf("replica at seq %d, need %d: %w", p.applied, seq, ErrReplicaLagging)
		}
		p.cond.Wait()
	}
	if p.applied < seq {
		return ErrClosed
	}
	return nil
}

// LastError returns the most recent CatchUp failure, or nil when the last
// catch-up reached the durable tail cleanly. The tailer retries failures
// silently on its poll, so this — together with a stalled Applied() — is
// how a wedged replica (store outage, undecodable record) is diagnosed.
func (p *Plane) LastError() error {
	if e := p.lastErr.Load(); e != nil {
		return *e
	}
	return nil
}

// CatchUp applies every durable log record the local replica has not seen,
// in sequence order. Safe to call concurrently (applies serialize) and
// idempotent per record. Correctness comes from probing record keys one
// past the applied sequence — never from the head high-water mark.
func (p *Plane) CatchUp() error {
	err := p.catchUp()
	if err == nil {
		p.lastErr.Store(nil)
	} else {
		p.lastErr.Store(&err)
	}
	return err
}

func (p *Plane) catchUp() error {
	p.applyMu.Lock()
	defer p.applyMu.Unlock()
	for {
		next := p.Applied() + 1
		raw, _, err := p.store.Get(recKey(next))
		if err != nil {
			if errors.Is(err, cloudstore.ErrNotFound) {
				return nil // at the durable tail
			}
			return err
		}
		rec, err := decodeRecord(raw)
		if err != nil {
			return err
		}
		if rec.Seq != next {
			return fmt.Errorf("replication: record %d carries seq %d", next, rec.Seq)
		}
		p.applyLocked(rec)
	}
}

// applyLocked executes one record against the local replica and publishes
// the new applied sequence. Waiter delivery precedes the applied-sequence
// publication, so an appender that observed applied ≥ seq is guaranteed its
// results are buffered. Caller holds applyMu.
func (p *Plane) applyLocked(rec Record) {
	results := make([]Result, len(rec.Muts))
	for i, m := range rec.Muts {
		results[i] = p.applyMutation(m)
	}
	p.applies.Add(1)
	if rec.Origin == p.cfg.Origin {
		p.waiterMu.Lock()
		if ch, ok := p.waiters[rec.Seq]; ok {
			ch <- results
			delete(p.waiters, rec.Seq)
		}
		p.waiterMu.Unlock()
	}
	p.mu.Lock()
	p.applied = rec.Seq
	p.cond.Broadcast()
	p.mu.Unlock()
}

// applyMutation executes one mutation. Every outcome — including the error
// — is a deterministic function of the replicated state, so replicas can
// never diverge on whether a mutation took effect.
func (p *Plane) applyMutation(m Mutation) Result {
	switch m.Op {
	case OpNewContext:
		id, err := p.rt.ApplyCreateContext(m.Class, m.Server, m.Owners...)
		return Result{ID: id, Server: m.Server, Err: err}
	case OpAddEdge:
		return Result{Err: p.rt.Graph().AddEdge(m.Parent, m.Child)}
	case OpRemoveEdge:
		return Result{Err: p.rt.Graph().RemoveEdge(m.Parent, m.Child)}
	case OpDetach:
		return Result{ID: m.Target, Err: p.rt.ApplyDestroyContext(m.Target)}
	case OpRemoveContext:
		// Applied with detach semantics, NOT the graph's edgeless-only
		// RemoveContext: a replica that minted a process-local virtual join
		// over the target still carries a virtual parent edge, and an
		// edgeless-only apply would fail there while succeeding fleet-wide
		// — divergence. Detaching strips any such local edges; the named
		// structure ends identical on every replica, and the edgeless
		// contract was already enforced at capture (Plane.RemoveContext).
		return Result{ID: m.Target, Err: p.rt.ApplyDestroyContext(m.Target)}
	case OpAddServer:
		s := p.rt.Cluster().AddServer(m.Profile)
		return Result{Server: s.ID()}
	case OpRemoveServer:
		// Force-removed: validated by the capturing node; replica hosted
		// counters are routing metadata and must not veto membership.
		return Result{Server: m.Server, Err: p.rt.Cluster().ForceRemoveServer(m.Server)}
	default:
		return Result{Err: fmt.Errorf("replication: unknown mutation %v", m.Op)}
	}
}

// ownRecordAt reports whether the record at seq exists and was appended by
// this plane. It is the commit probe for a CAS whose acknowledgment was
// lost: the appender is serial and has applied every earlier sequence, so a
// record at seq carrying our origin can only be the in-flight batch.
func (p *Plane) ownRecordAt(seq uint64) bool {
	raw, _, err := p.store.Get(recKey(seq))
	if err != nil {
		return false
	}
	rec, err := decodeRecord(raw)
	return err == nil && rec.Origin == p.cfg.Origin && rec.Seq == seq
}

// checkIDs rejects mutations naming virtual-join contexts at capture,
// before anything reaches the log: virtual IDs are process-local (see
// ownership.VirtualIDBase), so the same ID means different things — or
// nothing — on other replicas, and applying such a record could never be
// deterministic.
func checkIDs(ids ...ownership.ID) error {
	for _, id := range ids {
		if id.IsVirtual() {
			return fmt.Errorf("%v: %w", id, ErrVirtualID)
		}
	}
	return nil
}

// submit queues one mutation for the appender and waits for its apply
// outcome.
func (p *Plane) submit(m Mutation) (Result, error) {
	req := &appendReq{mut: m, out: make(chan outcome, 1)}
	select {
	case p.pending <- req:
	case <-p.stop:
		return Result{}, ErrClosed
	}
	select {
	case o := <-req.out:
		return o.res, o.err
	case <-p.stop:
		return Result{}, ErrClosed
	}
}

// appendLoop drains queued mutations into batched log appends.
func (p *Plane) appendLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case req := <-p.pending:
			batch := []*appendReq{req}
			for len(batch) < maxAppendBatch {
				select {
				case r := <-p.pending:
					batch = append(batch, r)
				default:
					goto flush
				}
			}
		flush:
			p.appendBatch(batch)
		}
	}
}

// appendBatch appends one record carrying every batched mutation: catch up,
// guess seq = applied+1, CAS-create the record there; on conflict re-read
// (apply the interloping record), re-base, retry with backoff. After the
// record is durable the local apply delivers each mutation's result to its
// waiter.
func (p *Plane) appendBatch(batch []*appendReq) {
	muts := make([]Mutation, len(batch))
	for i, r := range batch {
		muts[i] = r.mut
	}
	var seq uint64
	var resCh chan []Result
	err := cloudstore.Retry(p.cfg.Retry, func() error {
		// Re-base: apply everything other writers appended since the last
		// attempt so the next-sequence guess is fresh.
		if err := p.CatchUp(); err != nil {
			return err
		}
		seq = p.Applied() + 1
		payload, err := encodeRecord(Record{Seq: seq, Origin: p.cfg.Origin, Muts: muts})
		if err != nil {
			return err
		}
		ch := make(chan []Result, 1)
		p.waiterMu.Lock()
		p.waiters[seq] = ch
		p.waiterMu.Unlock()
		if _, err := p.store.CAS(recKey(seq), 0, payload); err != nil {
			if !errors.Is(err, cloudstore.ErrVersionMismatch) {
				// Ambiguous outcome: over a mesh-backed store the CAS — or
				// just its acknowledgment — may have been lost after the
				// record landed. Probe the record key: our own record there
				// means the append committed and must be reported as
				// success, or the caller would retry a mutation the whole
				// fleet is about to apply (same shape as the node runtime's
				// transfer commit probe). A failed probe aborts with the
				// ambiguity unresolved — the tailer still applies the
				// record if it committed, convergence over exactly-once.
				if p.ownRecordAt(seq) {
					resCh = ch
					return nil
				}
			} else {
				p.conflicts.Add(1)
			}
			p.waiterMu.Lock()
			delete(p.waiters, seq)
			p.waiterMu.Unlock()
			return err
		}
		resCh = ch
		return nil
	})
	if err != nil {
		for _, r := range batch {
			r.out <- outcome{err: err}
		}
		return
	}
	p.appends.Add(1)
	advanceHead(p.store, seq)
	if err := p.CatchUp(); err != nil {
		// The record is durable but the store failed before the local apply
		// could read it back: the mutations committed fleet-wide, yet their
		// results are unknown here. Surface the ambiguity; the tailer will
		// apply the record once the store recovers.
		p.waiterMu.Lock()
		delete(p.waiters, seq)
		p.waiterMu.Unlock()
		for _, r := range batch {
			r.out <- outcome{err: fmt.Errorf("appended at seq %d but local apply failed: %w", seq, err)}
		}
		return
	}
	// CatchUp returned with applied ≥ seq, and delivery precedes the
	// applied publication, so the results are buffered.
	results := <-resCh
	for i, r := range batch {
		r.out <- outcome{res: results[i]}
	}
	if p.notify != nil {
		p.notify(seq)
	}
}

// tailLoop applies records appended by peers: immediately on a notify hint
// (Poke), and on the fallback poll for hints that were lost.
func (p *Plane) tailLoop() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.wake:
		case <-ticker.C:
		}
		if p.paused.Load() {
			continue
		}
		_ = p.CatchUp() // store hiccups are retried next tick
	}
}

// Pause suspends the tailer's log applies, injecting replication lag: the
// local replica stops learning peers' mutations until Resume, so its
// applied sequence falls behind the head and lag-gated submit admission
// holds callers at the gate. The chaos harness uses this as its
// replication-lag fault class. Pausing an already paused plane is a no-op.
func (p *Plane) Pause() { p.paused.Store(true) }

// Resume lifts a Pause and kicks the tailer so catch-up starts
// immediately rather than on the next poll tick.
func (p *Plane) Resume() {
	p.paused.Store(false)
	p.kick()
}

// Paused reports whether the tailer is suspended.
func (p *Plane) Paused() bool { return p.paused.Load() }

// --- core.Replicator + fleet topology API ---

// CreateContext implements core.Replicator: sequence a context creation
// through the log and return the ID the log order assigned.
func (p *Plane) CreateContext(class string, srv cluster.ServerID, owners []ownership.ID) (ownership.ID, error) {
	if err := checkIDs(owners...); err != nil {
		return ownership.None, err
	}
	res, err := p.submit(Mutation{Op: OpNewContext, Class: class, Server: srv, Owners: owners})
	if err != nil {
		return ownership.None, err
	}
	return res.ID, res.Err
}

// AddEdge implements core.Replicator.
func (p *Plane) AddEdge(parent, child ownership.ID) error {
	if err := checkIDs(parent, child); err != nil {
		return err
	}
	res, err := p.submit(Mutation{Op: OpAddEdge, Parent: parent, Child: child})
	if err != nil {
		return err
	}
	return res.Err
}

// RemoveEdge sequences a direct-ownership edge removal through the log.
// The runtime exposes no edge-removal entry point of its own (applications
// mutate edges on the Graph directly), and a direct Graph call would
// diverge the replicas — so in a replicated deployment this method IS the
// way to remove an edge; same for RemoveContext below.
func (p *Plane) RemoveEdge(parent, child ownership.ID) error {
	if err := checkIDs(parent, child); err != nil {
		return err
	}
	res, err := p.submit(Mutation{Op: OpRemoveEdge, Parent: parent, Child: child})
	if err != nil {
		return err
	}
	return res.Err
}

// DestroyContext implements core.Replicator: detach-and-remove.
func (p *Plane) DestroyContext(id ownership.ID) error {
	if err := checkIDs(id); err != nil {
		return err
	}
	res, err := p.submit(Mutation{Op: OpDetach, Target: id})
	if err != nil {
		return err
	}
	return res.Err
}

// RemoveContext sequences an edgeless context removal through the log. The
// edgeless check runs here, at capture, counting only named edges —
// process-local virtual-join edges don't exist on other replicas and are
// stripped by the apply — because the apply itself must be unconditional to
// stay deterministic.
func (p *Plane) RemoveContext(id ownership.ID) error {
	if err := checkIDs(id); err != nil {
		return err
	}
	view := p.rt.Graph().Snapshot()
	parents, err := view.Parents(id)
	if err != nil {
		return err
	}
	children, err := view.Children(id)
	if err != nil {
		return err
	}
	for _, e := range append(parents, children...) {
		if !e.IsVirtual() {
			return fmt.Errorf("%v: %w", id, ownership.ErrHasEdges)
		}
	}
	res, err := p.submit(Mutation{Op: OpRemoveContext, Target: id})
	if err != nil {
		return err
	}
	return res.Err
}

// AddServer sequences a cluster scale-out through the log and returns the
// ID of the server the fleet provisioned.
func (p *Plane) AddServer(profile cluster.Profile) (cluster.ServerID, error) {
	res, err := p.submit(Mutation{Op: OpAddServer, Profile: profile})
	if err != nil {
		return 0, err
	}
	return res.Server, res.Err
}

// RemoveServer sequences a cluster scale-in through the log. The drain is
// validated here, at capture, against the origin's counters — the same
// check single-process cluster.RemoveServer enforces — because the apply is
// forced on every replica (stale replica counters must not veto
// membership). The validation is advisory against races like any
// hosted-count check: a concurrent placement landing between it and the
// append stays addressable through the directory but loses its server, so
// callers drain first (DrainAndRemove does).
func (p *Plane) RemoveServer(id cluster.ServerID) error {
	s, ok := p.rt.Cluster().Server(id)
	if !ok {
		return fmt.Errorf("remove %v: %w", id, cluster.ErrNoSuchServer)
	}
	if n := s.Hosted(); n != 0 {
		return fmt.Errorf("replication: server %v still hosts %d contexts", id, n)
	}
	res, err := p.submit(Mutation{Op: OpRemoveServer, Server: id})
	if err != nil {
		return err
	}
	return res.Err
}
