package replication

import (
	"testing"

	"aeon/internal/cloudstore"
	"aeon/internal/ownership"
	"aeon/internal/schema"
)

// testSchema declares the minimal two-class topology the plane tests build:
// Root contexts own Leaf contexts.
func testSchema() *schema.Schema {
	s := schema.New()
	root := s.MustDeclareClass("Root", nil)
	root.MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) {
		return nil, nil
	})
	leaf := s.MustDeclareClass("Leaf", nil)
	leaf.MustDeclareMethod("noop", func(call schema.Call, args []any) (any, error) {
		return nil, nil
	})
	return s
}

func TestRecKeysSortInSequenceOrder(t *testing.T) {
	if recKey(2) >= recKey(10) {
		t.Fatalf("record keys must sort numerically: %q vs %q", recKey(2), recKey(10))
	}
	if recKey(999) >= recKey(1000) {
		t.Fatalf("record keys must sort numerically: %q vs %q", recKey(999), recKey(1000))
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Seq: 7, Origin: 3, Muts: []Mutation{
		{Op: OpNewContext, Class: "Leaf", Owners: []ownership.ID{1, 2}, Server: 2},
		{Op: OpAddEdge, Parent: 1, Child: 4},
	}}
	b, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq || got.Origin != rec.Origin || len(got.Muts) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Muts[0].Op != OpNewContext || got.Muts[0].Class != "Leaf" || len(got.Muts[0].Owners) != 2 {
		t.Fatalf("mutation fields lost: %+v", got.Muts[0])
	}
}

func TestHeadHintAdvancesForwardOnly(t *testing.T) {
	store := cloudstore.New()
	advanceHead(store, 5)
	if h := readHead(store); h != 5 {
		t.Fatalf("head = %d, want 5", h)
	}
	// A laggard writer must not move the hint backwards.
	advanceHead(store, 3)
	if h := readHead(store); h != 5 {
		t.Fatalf("head moved backwards to %d", h)
	}
	advanceHead(store, 9)
	if h := readHead(store); h != 9 {
		t.Fatalf("head = %d, want 9", h)
	}
}
