package replication

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/ownership"
	"aeon/internal/transport"
)

// newTestRuntime builds one deterministic runtime replica: `servers` servers
// and one Root context per server, identical on every call — the same
// startup-determinism contract multi-process deployments rely on.
func newTestRuntime(t *testing.T, servers int) (*core.Runtime, []ownership.ID) {
	t.Helper()
	cl := cluster.New(transport.NewSim(transport.SimConfig{}))
	for i := 0; i < servers; i++ {
		cl.AddServer(cluster.M3Large)
	}
	s := testSchema()
	if err := s.Freeze(); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ChargeClientHops = false
	rt, err := core.New(s, ownership.NewGraph(), cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	var roots []ownership.ID
	for _, srv := range rt.Cluster().Servers() {
		id, err := rt.CreateContextOn(srv.ID(), "Root")
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, id)
	}
	return rt, roots
}

// newTestPlane attaches a started plane to rt over store.
func newTestPlane(t *testing.T, rt *core.Runtime, store cloudstore.API, origin transport.NodeID) *Plane {
	t.Helper()
	p := New(rt, store, Config{Origin: origin, Poll: 25 * time.Millisecond})
	rt.SetReplicator(p)
	if err := p.Start(); err != nil {
		t.Fatalf("plane %v start: %v", origin, err)
	}
	t.Cleanup(p.Close)
	return p
}

// graphFingerprint renders the full structure of a graph (IDs, classes,
// sorted child sets) for replica-equality assertions.
func graphFingerprint(t *testing.T, g *ownership.Graph) string {
	t.Helper()
	view := g.Snapshot()
	roots := view.Roots()
	seen := map[ownership.ID]bool{}
	var all []ownership.ID
	var walk func(id ownership.ID)
	walk = func(id ownership.ID) {
		if seen[id] {
			return
		}
		seen[id] = true
		all = append(all, id)
		children, err := view.Children(id)
		if err != nil {
			t.Fatalf("children %v: %v", id, err)
		}
		for _, c := range children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := ""
	for _, id := range all {
		class, _ := view.Class(id)
		children, _ := view.Children(id)
		sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
		out += fmt.Sprintf("%v:%s:%v\n", id, class, children)
	}
	return out
}

func TestPlaneSequencesCreateThroughLog(t *testing.T) {
	rt, roots := newTestRuntime(t, 2)
	store := cloudstore.New()
	p := newTestPlane(t, rt, store, 1)

	// The runtime redirect: CreateContextOn goes through the log.
	id, err := rt.CreateContextOn(1, "Leaf", roots[0])
	if err != nil {
		t.Fatalf("replicated create: %v", err)
	}
	if !rt.Graph().Contains(id) {
		t.Fatalf("created %v not applied to local replica", id)
	}
	if srv, ok := rt.Directory().Locate(id); !ok || srv != 1 {
		t.Fatalf("created %v placed on %v, want 1", id, srv)
	}
	if p.Applied() != 1 || p.Appends() != 1 {
		t.Fatalf("applied=%d appends=%d, want 1/1", p.Applied(), p.Appends())
	}
	// The record is durable and carries the mutation.
	raw, _, err := store.Get(recKey(1))
	if err != nil {
		t.Fatalf("record 1 not durable: %v", err)
	}
	rec, err := decodeRecord(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 1 || len(rec.Muts) != 1 || rec.Muts[0].Op != OpNewContext {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if head := readHead(store); head != 1 {
		t.Fatalf("head hint = %d, want 1", head)
	}
	// Destroy goes through the log too.
	if err := rt.DestroyContext(id); err != nil {
		t.Fatalf("replicated destroy: %v", err)
	}
	if rt.Graph().Contains(id) {
		t.Fatalf("destroyed %v still in replica", id)
	}
	if p.Applied() != 2 {
		t.Fatalf("applied=%d after destroy, want 2", p.Applied())
	}
}

func TestTwoReplicasAssignIdenticalIDs(t *testing.T) {
	store := cloudstore.New()
	rtA, rootsA := newTestRuntime(t, 2)
	rtB, _ := newTestRuntime(t, 2)
	pA := newTestPlane(t, rtA, store, 1)
	pB := newTestPlane(t, rtB, store, 2)

	// Interleave creations from both nodes; sequence order — not local call
	// order — must assign IDs, and both replicas must converge on the same
	// structure.
	var ids []ownership.ID
	for i := 0; i < 6; i++ {
		var id ownership.ID
		var err error
		if i%2 == 0 {
			id, err = rtA.CreateContextOn(1, "Leaf", rootsA[0])
		} else {
			id, err = rtB.CreateContextOn(2, "Leaf", rootsA[1])
		}
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("IDs not strictly increasing in log order: %v", ids)
		}
	}
	if err := pA.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := pB.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if fA, fB := graphFingerprint(t, rtA.Graph()), graphFingerprint(t, rtB.Graph()); fA != fB {
		t.Fatalf("replicas diverged:\nA:\n%s\nB:\n%s", fA, fB)
	}
	// Placements replicate too: node B can locate a context node A created.
	for _, id := range ids {
		sA, okA := rtA.Directory().Locate(id)
		sB, okB := rtB.Directory().Locate(id)
		if !okA || !okB || sA != sB {
			t.Fatalf("placement of %v diverged: A=%v,%v B=%v,%v", id, sA, okA, sB, okB)
		}
	}
}

func TestConcurrentAppendersConvergeUnderContention(t *testing.T) {
	store := cloudstore.New()
	rtA, rootsA := newTestRuntime(t, 2)
	rtB, _ := newTestRuntime(t, 2)
	pA := newTestPlane(t, rtA, store, 1)
	pB := newTestPlane(t, rtB, store, 2)

	const workers, each = 4, 8
	var wg sync.WaitGroup
	idsCh := make(chan ownership.ID, 2*workers*each)
	for w := 0; w < workers; w++ {
		for _, env := range []struct {
			rt   *core.Runtime
			srv  cluster.ServerID
			root ownership.ID
		}{{rtA, 1, rootsA[0]}, {rtB, 2, rootsA[1]}} {
			wg.Add(1)
			go func(rt *core.Runtime, srv cluster.ServerID, root ownership.ID) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					id, err := rt.CreateContextOn(srv, "Leaf", root)
					if err != nil {
						t.Errorf("create: %v", err)
						return
					}
					idsCh <- id
				}
			}(env.rt, env.srv, env.root)
		}
	}
	wg.Wait()
	close(idsCh)
	seen := map[ownership.ID]bool{}
	n := 0
	for id := range idsCh {
		if seen[id] {
			t.Fatalf("duplicate ID %v assigned", id)
		}
		seen[id] = true
		n++
	}
	if n != 2*workers*each {
		t.Fatalf("got %d IDs, want %d", n, 2*workers*each)
	}
	if err := pA.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if err := pB.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if fA, fB := graphFingerprint(t, rtA.Graph()), graphFingerprint(t, rtB.Graph()); fA != fB {
		t.Fatalf("replicas diverged under contention:\nA:\n%s\nB:\n%s", fA, fB)
	}
	// Batching may coalesce, but every record must have landed exactly once:
	// total appended records == applied sequence on both replicas.
	if pA.Applied() != pB.Applied() {
		t.Fatalf("applied diverged: %d vs %d", pA.Applied(), pB.Applied())
	}
	if pA.Appends()+pB.Appends() != pA.Applied() {
		t.Fatalf("appends %d+%d != applied %d (lost or duplicated record)",
			pA.Appends(), pB.Appends(), pA.Applied())
	}
}

func TestApplyIdempotentUnderDuplicateAndStalePokes(t *testing.T) {
	store := cloudstore.New()
	rt, roots := newTestRuntime(t, 1)
	p := newTestPlane(t, rt, store, 1)

	if _, err := rt.CreateContextOn(1, "Leaf", roots[0]); err != nil {
		t.Fatal(err)
	}
	applies := p.Applies()
	lenBefore := rt.Graph().Len()
	// Duplicate, stale, and future pokes must never re-apply a record.
	for i := 0; i < 10; i++ {
		p.Poke(1)
		p.Poke(0)
		p.Poke(99)
	}
	if err := p.CatchUp(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let poked tailer passes run
	if p.Applies() != applies {
		t.Fatalf("pokes re-applied records: %d → %d", applies, p.Applies())
	}
	if rt.Graph().Len() != lenBefore {
		t.Fatalf("graph changed under duplicate pokes: %d → %d", lenBefore, rt.Graph().Len())
	}
}

func TestDeterministicApplyErrors(t *testing.T) {
	store := cloudstore.New()
	rtA, rootsA := newTestRuntime(t, 2)
	rtB, _ := newTestRuntime(t, 2)
	pA := newTestPlane(t, rtA, store, 1)
	pB := newTestPlane(t, rtB, store, 2)

	// A cycle-creating edge fails, deterministically, on every replica —
	// and the failed record still advances the log.
	child, err := rtA.CreateContextOn(1, "Leaf", rootsA[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := pA.AddEdge(child, rootsA[0]); err == nil {
		t.Fatal("cycle edge unexpectedly applied")
	}
	if err := pB.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if pB.Applied() != pA.Applied() {
		t.Fatalf("failed mutation desynced replicas: %d vs %d", pB.Applied(), pA.Applied())
	}
	if fA, fB := graphFingerprint(t, rtA.Graph()), graphFingerprint(t, rtB.Graph()); fA != fB {
		t.Fatalf("replicas diverged after failed apply:\nA:\n%s\nB:\n%s", fA, fB)
	}
}

func TestServerMembershipReplicates(t *testing.T) {
	store := cloudstore.New()
	rtA, _ := newTestRuntime(t, 2)
	rtB, _ := newTestRuntime(t, 2)
	pA := newTestPlane(t, rtA, store, 1)
	pB := newTestPlane(t, rtB, store, 2)

	srv, err := pA.AddServer(cluster.M1Small)
	if err != nil {
		t.Fatalf("replicated add-server: %v", err)
	}
	if err := pB.CatchUp(); err != nil {
		t.Fatal(err)
	}
	sB, ok := rtB.Cluster().Server(srv)
	if !ok {
		t.Fatalf("server %v not applied on replica B", srv)
	}
	if sB.Profile().Name != cluster.M1Small.Name {
		t.Fatalf("replica B applied profile %q", sB.Profile().Name)
	}
	// Scale-in is forced on apply: replica hosted counters cannot veto.
	if err := pB.RemoveServer(srv); err != nil {
		t.Fatalf("replicated remove-server: %v", err)
	}
	if err := pA.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if _, ok := rtA.Cluster().Server(srv); ok {
		t.Fatalf("server %v still in replica A after replicated removal", srv)
	}
}

func TestWaitForReachesAndTimesOut(t *testing.T) {
	store := cloudstore.New()
	rtA, rootsA := newTestRuntime(t, 2)
	rtB, _ := newTestRuntime(t, 2)
	pA := newTestPlane(t, rtA, store, 1)
	// Long poll: B only advances when kicked, which is what WaitFor does.
	pB := New(rtB, store, Config{Origin: 2, Poll: time.Hour})
	rtB.SetReplicator(pB)
	if err := pB.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pB.Close)

	if _, err := rtA.CreateContextOn(1, "Leaf", rootsA[0]); err != nil {
		t.Fatal(err)
	}
	if err := pB.WaitFor(pA.Applied(), 2*time.Second); err != nil {
		t.Fatalf("WaitFor a durable sequence: %v", err)
	}
	// A sequence beyond the durable tail times out typed.
	err := pB.WaitFor(pA.Applied()+5, 50*time.Millisecond)
	if !errors.Is(err, ErrReplicaLagging) {
		t.Fatalf("WaitFor beyond tail = %v, want ErrReplicaLagging", err)
	}
}

// lostAckStore commits one armed CAS on the inner store but reports a
// transport-style failure to the caller — the mesh-backed store's
// ambiguous-outcome mode.
type lostAckStore struct {
	cloudstore.API
	mu    sync.Mutex
	armed int
}

var errSimulatedLostAck = errors.New("simulated lost CAS acknowledgment")

func (s *lostAckStore) CAS(key string, expect uint64, value []byte) (uint64, error) {
	v, err := s.API.CAS(key, expect, value)
	s.mu.Lock()
	drop := err == nil && s.armed > 0
	if drop {
		s.armed--
	}
	s.mu.Unlock()
	if drop {
		return 0, errSimulatedLostAck
	}
	return v, err
}

// TestAppendSurvivesLostCASAck pins the append commit probe: when the CAS
// lands on the store but its acknowledgment is lost, the appender must
// discover its own record at the claimed sequence and report success — not
// fail a mutation the whole fleet is about to apply (which would invite a
// duplicating retry).
func TestAppendSurvivesLostCASAck(t *testing.T) {
	inner := cloudstore.New()
	store := &lostAckStore{API: inner}
	rt, roots := newTestRuntime(t, 1)
	p := newTestPlane(t, rt, store, 1)

	store.mu.Lock()
	store.armed = 1
	store.mu.Unlock()
	id, err := rt.CreateContextOn(1, "Leaf", roots[0])
	if err != nil {
		t.Fatalf("create with lost CAS ack: %v", err)
	}
	if !rt.Graph().Contains(id) {
		t.Fatalf("committed create %v not applied locally", id)
	}
	if p.Applied() != 1 || p.Appends() != 1 {
		t.Fatalf("applied=%d appends=%d, want 1/1", p.Applied(), p.Appends())
	}
	// The log holds exactly one record: no duplicate from a retry.
	if _, _, err := inner.Get(recKey(2)); !errors.Is(err, cloudstore.ErrNotFound) {
		t.Fatalf("unexpected second record after lost-ack append: %v", err)
	}
}

func TestRemoveServerValidatesDrainAtCapture(t *testing.T) {
	store := cloudstore.New()
	rt, roots := newTestRuntime(t, 2)
	p := newTestPlane(t, rt, store, 1)
	_ = roots
	// Server 2 hosts its root context: scale-in must be refused at capture,
	// before anything reaches the log.
	if err := p.RemoveServer(2); err == nil {
		t.Fatal("RemoveServer of a hosting server succeeded")
	}
	if p.Appends() != 0 {
		t.Fatal("refused removal still appended a record")
	}
	if _, ok := rt.Cluster().Server(2); !ok {
		t.Fatal("refused removal still removed the server locally")
	}
}

// TestVirtualIDsRejectedAtCapture pins the determinism guard: virtual-join
// contexts are process-local (minted in local query order from the reserved
// band), so a mutation naming one must be refused before it reaches the log
// — applying it on another replica could attach to a different virtual, or
// none, and desync the ID allocator.
func TestVirtualIDsRejectedAtCapture(t *testing.T) {
	store := cloudstore.New()
	rt, roots := newTestRuntime(t, 1)
	p := newTestPlane(t, rt, store, 1)

	virtual := ownership.VirtualIDBase + 7
	if _, err := p.CreateContext("Leaf", 1, []ownership.ID{virtual}); !errors.Is(err, ErrVirtualID) {
		t.Fatalf("create owned by virtual = %v, want ErrVirtualID", err)
	}
	if err := p.AddEdge(virtual, roots[0]); !errors.Is(err, ErrVirtualID) {
		t.Fatalf("edge from virtual = %v, want ErrVirtualID", err)
	}
	if err := p.DestroyContext(virtual); !errors.Is(err, ErrVirtualID) {
		t.Fatalf("destroy virtual = %v, want ErrVirtualID", err)
	}
	if p.Appends() != 0 {
		t.Fatalf("rejected mutations still appended %d records", p.Appends())
	}
}

func TestRejoiningReplicaReplaysLogOnStart(t *testing.T) {
	store := cloudstore.New()
	rtA, rootsA := newTestRuntime(t, 2)
	pA := newTestPlane(t, rtA, store, 1)
	var created []ownership.ID
	for i := 0; i < 5; i++ {
		id, err := rtA.CreateContextOn(2, "Leaf", rootsA[1])
		if err != nil {
			t.Fatal(err)
		}
		created = append(created, id)
	}
	if err := rtA.DestroyContext(created[0]); err != nil {
		t.Fatal(err)
	}

	// A "rejoining" node: fresh deterministic startup replica, plane Start
	// replays the whole log before returning.
	rtB, _ := newTestRuntime(t, 2)
	pB := newTestPlane(t, rtB, store, 2)
	if pB.Applied() != pA.Applied() {
		t.Fatalf("rejoined replica at seq %d, fleet at %d", pB.Applied(), pA.Applied())
	}
	if fA, fB := graphFingerprint(t, rtA.Graph()), graphFingerprint(t, rtB.Graph()); fA != fB {
		t.Fatalf("rejoined replica diverged:\nA:\n%s\nB:\n%s", fA, fB)
	}
}
