package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aeon/internal/transport"
)

func TestAddRemoveServer(t *testing.T) {
	c := New(transport.NullNetwork{})
	s1 := c.AddServer(M3Large)
	s2 := c.AddServer(M1Small)
	if c.Size() != 2 {
		t.Fatalf("size = %d; want 2", c.Size())
	}
	if s1.ID() == s2.ID() {
		t.Fatal("server IDs must be unique")
	}
	got, ok := c.Server(s1.ID())
	if !ok || got != s1 {
		t.Fatal("Server lookup failed")
	}
	if err := c.RemoveServer(s1.ID()); err != nil {
		t.Fatal(err)
	}
	if !s1.Removed() {
		t.Fatal("server should be marked removed")
	}
	if _, ok := c.Server(s1.ID()); ok {
		t.Fatal("removed server should be gone")
	}
	if err := c.RemoveServer(s1.ID()); !errors.Is(err, ErrNoSuchServer) {
		t.Fatalf("err = %v; want ErrNoSuchServer", err)
	}
}

func TestRemoveServerRefusesHostedContexts(t *testing.T) {
	c := New(transport.NullNetwork{})
	s := c.AddServer(M3Large)
	s.AddHosted(3)
	if err := c.RemoveServer(s.ID()); err == nil {
		t.Fatal("removing a server with hosted contexts must fail")
	}
	s.AddHosted(-3)
	if err := c.RemoveServer(s.ID()); err != nil {
		t.Fatal(err)
	}
}

func TestServersOrdered(t *testing.T) {
	c := New(transport.NullNetwork{})
	for i := 0; i < 5; i++ {
		c.AddServer(M3Large)
	}
	servers := c.Servers()
	for i := 1; i < len(servers); i++ {
		if servers[i-1].ID() >= servers[i].ID() {
			t.Fatal("servers not ordered by ID")
		}
	}
}

func TestWorkOccupiesSlot(t *testing.T) {
	c := New(transport.NullNetwork{})
	s := c.AddServer(Profile{Name: "uni", Cores: 1, Speed: 1.0})
	start := time.Now()
	var wg sync.WaitGroup
	// Two 20ms jobs on one core must take ≥40ms.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Work(20 * time.Millisecond)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("elapsed %v; want ≥40ms (serialization on one core)", el)
	}
}

func TestWorkParallelOnMultipleCores(t *testing.T) {
	c := New(transport.NullNetwork{})
	s := c.AddServer(Profile{Name: "duo", Cores: 2, Speed: 1.0})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Work(30 * time.Millisecond)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 55*time.Millisecond {
		t.Fatalf("elapsed %v; want ≈30ms (two cores in parallel)", el)
	}
}

func TestWorkSpeedScaling(t *testing.T) {
	c := New(transport.NullNetwork{})
	slow := c.AddServer(Profile{Name: "slow", Cores: 1, Speed: 0.5})
	start := time.Now()
	slow.Work(10 * time.Millisecond)
	if el := time.Since(start); el < 19*time.Millisecond {
		t.Fatalf("elapsed %v; want ≥20ms at half speed", el)
	}
}

func TestWorkZeroFree(t *testing.T) {
	c := New(transport.NullNetwork{})
	s := c.AddServer(M3Large)
	start := time.Now()
	s.Work(0)
	s.Work(-time.Second)
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("zero work took %v", el)
	}
}

func TestUtilization(t *testing.T) {
	c := New(transport.NullNetwork{})
	s := c.AddServer(Profile{Name: "uni", Cores: 1, Speed: 1.0})
	_ = s.Utilization() // anchor the sampling window
	s.Work(30 * time.Millisecond)
	u := s.Utilization()
	if u < 0.2 || u > 1.0 {
		t.Fatalf("utilization = %v; want high after busy window", u)
	}
	time.Sleep(30 * time.Millisecond)
	u = s.Utilization()
	if u > 0.2 {
		t.Fatalf("utilization = %v; want low after idle window", u)
	}
}

func TestHopChargesNetwork(t *testing.T) {
	sim := transport.NewSim(transport.SimConfig{BaseLatency: 5 * time.Millisecond})
	c := New(sim)
	s1 := c.AddServer(M3Large)
	s2 := c.AddServer(M3Large)
	start := time.Now()
	if err := c.Hop(s1.ID(), s2.ID(), 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("hop took %v; want ≥5ms", el)
	}
	// Same-server hops are free.
	start = time.Now()
	if err := c.Hop(s1.ID(), s1.ID(), 0); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > time.Millisecond {
		t.Fatalf("local hop took %v", el)
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{M3Large, M1Large, M1Medium, M1Small} {
		if p.Cores <= 0 || p.Speed <= 0 || p.MigrationMBps <= 0 || p.Name == "" {
			t.Fatalf("bad profile %+v", p)
		}
	}
	if M1Small.Speed >= M1Medium.Speed || M1Medium.Speed >= M1Large.Speed {
		t.Fatal("profile speeds must be ordered small < medium < large")
	}
}
