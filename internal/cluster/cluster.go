// Package cluster simulates the paper's EC2 deployment substrate: a set of
// servers, each with a bounded amount of CPU parallelism (cores), a relative
// speed, and a NIC bandwidth profile, joined by a transport.Network that
// charges cross-server message latency.
//
// Event handlers consume simulated CPU via Server.Work, which occupies one of
// the server's worker slots for the scaled duration — so a saturated server
// queues work exactly like a saturated VM, which is what produces the
// latency knees in Figures 5b/6b and the SLA violations in Figure 7.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aeon/internal/transport"
)

// ServerID identifies a server; it doubles as the transport node ID.
type ServerID = transport.NodeID

// Profile describes an instance type. Speeds are relative to m3.large (the
// paper's system-under-test instance); migration bandwidth and per-core
// counts are calibrated so Figure 9's ratios reproduce.
type Profile struct {
	// Name of the instance type.
	Name string
	// Cores is the number of concurrently executing worker slots.
	Cores int
	// Speed scales simulated CPU: Work(d) occupies a slot for d/Speed.
	Speed float64
	// MigrationMBps is the NIC bandwidth available to context state
	// transfer during migration.
	MigrationMBps float64
}

// Instance profiles used by the paper's evaluation (§ 6).
var (
	// M3Large hosts AEON/AEON_SO/EventWave servers in §§ 6.1.
	M3Large = Profile{Name: "m3.large", Cores: 2, Speed: 1.0, MigrationMBps: 100}
	// M1Large, M1Medium and M1Small are used by the elasticity and
	// migration experiments (§§ 6.2–6.3).
	M1Large  = Profile{Name: "m1.large", Cores: 2, Speed: 0.9, MigrationMBps: 71}
	M1Medium = Profile{Name: "m1.medium", Cores: 1, Speed: 0.6, MigrationMBps: 42}
	M1Small  = Profile{Name: "m1.small", Cores: 1, Speed: 0.4, MigrationMBps: 25}
)

// ErrNoSuchServer is returned when a server ID is unknown.
var ErrNoSuchServer = errors.New("cluster: no such server")

// Server is one simulated machine.
type Server struct {
	id      ServerID
	profile Profile
	slots   chan struct{}

	busyNs        atomic.Int64
	hosted        atomic.Int64
	transferBytes atomic.Int64

	sampleMu   sync.Mutex
	lastbusyNs int64
	lastSample time.Time

	removed atomic.Bool
}

// ID returns the server's ID.
func (s *Server) ID() ServerID { return s.id }

// Profile returns the server's instance profile.
func (s *Server) Profile() Profile { return s.profile }

// spinThreshold is the boundary below which simulated CPU burns as a busy
// spin: time.Sleep has a ~1ms granularity floor on common kernels that
// would flatten sub-millisecond cost differences between systems, while a
// spin is accurate to microseconds (and models CPU consumption faithfully).
const spinThreshold = time.Millisecond

// Work consumes d of simulated CPU: it occupies one worker slot for
// d/Speed wall-clock time. Zero or negative durations are free.
func (s *Server) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	scaled := time.Duration(float64(d) / s.profile.Speed)
	s.slots <- struct{}{}
	if scaled < spinThreshold {
		start := time.Now()
		for time.Since(start) < scaled {
		}
	} else {
		time.Sleep(scaled)
	}
	<-s.slots
	s.busyNs.Add(scaled.Nanoseconds())
}

// Hosted returns the number of contexts currently placed on this server.
func (s *Server) Hosted() int { return int(s.hosted.Load()) }

// AddHosted adjusts the hosted-context count (called by the placement
// directory on placement and migration).
func (s *Server) AddHosted(delta int) { s.hosted.Add(int64(delta)) }

// AddTransferBytes records migration state-transfer traffic through this
// server's NIC (charged on both endpoints of a group move).
func (s *Server) AddTransferBytes(n int64) { s.transferBytes.Add(n) }

// TransferBytes returns the cumulative migration state-transfer traffic.
func (s *Server) TransferBytes() int64 { return s.transferBytes.Load() }

// Utilization returns the fraction of core-time spent busy since the last
// call (the resource-utilization signal the eManager polls, § 5.2).
func (s *Server) Utilization() float64 {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	now := time.Now()
	busy := s.busyNs.Load()
	if s.lastSample.IsZero() {
		s.lastSample = now
		s.lastbusyNs = busy
		return 0
	}
	elapsed := now.Sub(s.lastSample)
	if elapsed <= 0 {
		return 0
	}
	deltaBusy := busy - s.lastbusyNs
	s.lastSample = now
	s.lastbusyNs = busy
	u := float64(deltaBusy) / (float64(elapsed.Nanoseconds()) * float64(s.profile.Cores))
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return u
}

// Removed reports whether the server was removed from the cluster.
func (s *Server) Removed() bool { return s.removed.Load() }

// Cluster is a set of servers joined by a network. Like the ownership graph,
// the server map is copy-on-write: membership lives in an immutable view
// behind an atomic pointer, so the per-event lookups (Server on every route
// and Work charge) never take a lock; AddServer/RemoveServer — rare
// elasticity actions — rebuild the view under a writer-only mutex.
type Cluster struct {
	net transport.Network

	mu     sync.Mutex // writers only: AddServer / RemoveServer
	view   atomic.Pointer[clusterView]
	nextID ServerID
}

// clusterView is one immutable version of cluster membership.
type clusterView struct {
	byID    map[ServerID]*Server
	ordered []*Server // sorted by ID
}

// New returns an empty cluster on the given network.
func New(net transport.Network) *Cluster {
	c := &Cluster{net: net, nextID: 1}
	c.view.Store(&clusterView{byID: make(map[ServerID]*Server)})
	return c
}

// Net returns the cluster's network.
func (c *Cluster) Net() transport.Network { return c.net }

// publishLocked installs a new membership view built from byID. Caller holds
// c.mu.
func (c *Cluster) publishLocked(byID map[ServerID]*Server) {
	ordered := make([]*Server, 0, len(byID))
	for _, s := range byID {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].id < ordered[j].id })
	c.view.Store(&clusterView{byID: byID, ordered: ordered})
}

// AddServer provisions a server with the given profile ("scale out").
func (c *Cluster) AddServer(p Profile) *Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	s := &Server{id: id, profile: p, slots: make(chan struct{}, p.Cores)}
	cur := c.view.Load()
	byID := make(map[ServerID]*Server, len(cur.byID)+1)
	for k, v := range cur.byID {
		byID[k] = v
	}
	byID[id] = s
	c.publishLocked(byID)
	return s
}

// RemoveServer releases a server ("scale in"). The caller (the eManager)
// must have migrated its contexts away first.
func (c *Cluster) RemoveServer(id ServerID) error {
	return c.removeServer(id, false)
}

// ForceRemoveServer releases a server without the hosted-contexts check.
// Replication log applies use it: the drain was validated on the node that
// captured the mutation against its authoritative counters, and replica
// nodes — whose hosted counters are best-effort routing metadata — must
// apply the removal identically or cluster membership would diverge.
func (c *Cluster) ForceRemoveServer(id ServerID) error {
	return c.removeServer(id, true)
}

func (c *Cluster) removeServer(id ServerID, force bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.view.Load()
	s, ok := cur.byID[id]
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrNoSuchServer)
	}
	if n := s.hosted.Load(); n != 0 && !force {
		return fmt.Errorf("cluster: server %v still hosts %d contexts", id, n)
	}
	s.removed.Store(true)
	byID := make(map[ServerID]*Server, len(cur.byID)-1)
	for k, v := range cur.byID {
		if k != id {
			byID[k] = v
		}
	}
	c.publishLocked(byID)
	return nil
}

// Server returns the server with the given ID (lock-free).
func (c *Cluster) Server(id ServerID) (*Server, bool) {
	s, ok := c.view.Load().byID[id]
	return s, ok
}

// Servers returns all live servers ordered by ID (lock-free).
func (c *Cluster) Servers() []*Server {
	return append([]*Server(nil), c.view.Load().ordered...)
}

// Size returns the number of live servers (lock-free).
func (c *Cluster) Size() int {
	return len(c.view.Load().ordered)
}

// Hop charges one cross-server message of the given size.
func (c *Cluster) Hop(from, to ServerID, bytes int) error {
	if from == to {
		return nil
	}
	return c.net.Hop(from, to, bytes)
}
