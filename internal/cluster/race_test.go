package cluster

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aeon/internal/transport"
)

// TestClusterServerMapRaceStress hammers the lock-free membership reads
// (Server, Servers, Size) while elasticity actions add and remove servers.
// Run with -race. Every Servers() call must observe one internally
// consistent membership view: non-nil entries, strictly increasing IDs, and
// Server() agreeing with the listing for IDs taken from it.
func TestClusterServerMapRaceStress(t *testing.T) {
	c := New(transport.NullNetwork{})
	// A stable floor of servers that are never removed, so readers always
	// have live IDs to resolve.
	var floor []ServerID
	for i := 0; i < 4; i++ {
		floor = append(floor, c.AddServer(M3Large).ID())
	}

	var churn struct {
		sync.Mutex
		ids []ServerID
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		stop.Store(true)
		t.Errorf(format, args...)
	}

	// Mutator: scale out / scale in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for !stop.Load() {
			churn.Lock()
			if len(churn.ids) < 8 && rng.Intn(2) == 0 {
				churn.ids = append(churn.ids, c.AddServer(M1Medium).ID())
				churn.Unlock()
				continue
			}
			if n := len(churn.ids); n > 0 {
				i := rng.Intn(n)
				id := churn.ids[i]
				churn.ids[i] = churn.ids[n-1]
				churn.ids = churn.ids[:n-1]
				churn.Unlock()
				if err := c.RemoveServer(id); err != nil {
					fail("RemoveServer(%v): %v", id, err)
					return
				}
				continue
			}
			churn.Unlock()
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				servers := c.Servers()
				if len(servers) < len(floor) {
					fail("Servers() lost the stable floor: %d < %d", len(servers), len(floor))
					return
				}
				for i, s := range servers {
					if s == nil {
						fail("Servers()[%d] is nil", i)
						return
					}
					if i > 0 && servers[i-1].ID() >= s.ID() {
						fail("Servers() not strictly ordered: %v then %v", servers[i-1].ID(), s.ID())
						return
					}
				}
				if size := c.Size(); size < len(floor) {
					fail("Size() = %d below stable floor", size)
					return
				}
				// Floor servers always resolve; churn servers may vanish but
				// must never resolve to a nil or foreign entry.
				id := floor[rng.Intn(len(floor))]
				s, ok := c.Server(id)
				if !ok || s == nil || s.ID() != id {
					fail("Server(%v) = %v, %v", id, s, ok)
					return
				}
				if s.Removed() {
					fail("floor server %v marked removed", id)
					return
				}
				pick := servers[rng.Intn(len(servers))]
				if got, ok := c.Server(pick.ID()); ok && got != pick {
					fail("Server(%v) returned a different *Server than the listing", pick.ID())
					return
				}
			}
		}(int64(10 + r))
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}
