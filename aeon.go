// Package aeon is a Go implementation of AEON — Atomic Events over an
// Ownership Network (Sang et al., Middleware 2016): a programming framework
// for scalable, elastic cloud services in which applications are modeled as
// a DAG of stateful contexts and multi-context events execute with strict
// serializability, deadlock freedom and starvation freedom.
//
// Programs declare contextclasses (state factory + method table, with the
// paper's `ro` readonly modifier and statically checked may-access sets),
// instantiate contexts into an ownership network, and submit events:
//
//	s := aeon.NewSchema()
//	account := s.MustDeclareClass("Account", func() any { return &Account{} })
//	account.MustDeclareMethod("deposit", deposit)
//	bank := s.MustDeclareClass("Bank", nil)
//	bank.MustDeclareMethod("transfer", transfer,
//		aeon.MayCall("Account", "deposit"), aeon.MayCall("Account", "withdraw"))
//
//	sys, err := aeon.New(aeon.WithSchema(s), aeon.WithServers(4, aeon.M3Large))
//	bankID, _ := sys.Runtime.CreateContext("Bank")
//	a1, _ := sys.Runtime.CreateContext("Account", bankID)
//	a2, _ := sys.Runtime.CreateContext("Account", bankID)
//	_, err = sys.Runtime.Submit(bankID, "transfer", a1, a2, 100)
//
// Events are sequenced at the dominator of their target context (§ 4 of the
// paper), so conflicting events serialize while disjoint ones run in
// parallel. The elasticity manager (System.Manager) migrates contexts
// between servers with the paper's five-step protocol and evaluates
// elasticity policies (resource utilization, server contention, SLA).
package aeon

import (
	"aeon/internal/cloudstore"
	"aeon/internal/cluster"
	"aeon/internal/core"
	"aeon/internal/emanager"
	"aeon/internal/ownership"
	"aeon/internal/schema"
	"aeon/internal/transport"
)

// Core type surface, re-exported from the implementation packages.
type (
	// ContextID identifies a context in the ownership network.
	ContextID = ownership.ID
	// Schema is a set of contextclass declarations.
	Schema = schema.Schema
	// Class is one contextclass declaration.
	Class = schema.Class
	// Call is the environment a method body executes in.
	Call = schema.Call
	// Handler is a contextclass method body.
	Handler = schema.Handler
	// AsyncResult joins an asynchronous intra-event call.
	AsyncResult = schema.AsyncResult
	// MethodOption configures a method declaration.
	MethodOption = schema.MethodOption

	// Runtime executes events over an ownership network on a cluster.
	Runtime = core.Runtime
	// RuntimeConfig tunes the runtime.
	RuntimeConfig = core.Config
	// Future is an asynchronous event-submission handle.
	Future = core.Future
	// Context is the runtime representation of a context instance.
	Context = core.Context

	// Cluster is the compute substrate (simulated servers + network).
	Cluster = cluster.Cluster
	// Server is one simulated machine.
	Server = cluster.Server
	// ServerID identifies a server.
	ServerID = cluster.ServerID
	// Profile describes a server instance type.
	Profile = cluster.Profile

	// Graph is the ownership network.
	Graph = ownership.Graph
	// GraphSnapshot is an immutable, lock-free view of the ownership
	// network at one version (Graph.Snapshot / Graph.Resolve).
	GraphSnapshot = ownership.Snapshot

	// Manager is the elasticity manager (eManager, § 5).
	Manager = emanager.Manager
	// ManagerConfig tunes the elasticity manager.
	ManagerConfig = emanager.Config
	// Policy decides elasticity actions from telemetry.
	Policy = emanager.Policy
	// SLAPolicy scales the cluster to keep request latency under a target.
	SLAPolicy = emanager.SLAPolicy
	// ResourceUtilizationPolicy migrates load off overloaded servers.
	ResourceUtilizationPolicy = emanager.ResourceUtilizationPolicy
	// ServerContentionPolicy bounds contexts per server.
	ServerContentionPolicy = emanager.ServerContentionPolicy
	// Constraint can veto elasticity actions (Tuba-style).
	Constraint = emanager.Constraint
	// DSLPolicy is a policy compiled from the elasticity policy language
	// (the § 8 future-work extension), e.g.
	// "when latency > 10ms add server m1.small".
	DSLPolicy = emanager.DSLPolicy

	// CloudStore is the versioned KV store backing the eManager.
	CloudStore = cloudstore.Store
	// SimNetworkConfig parameterizes the simulated network.
	SimNetworkConfig = transport.SimConfig
)

// Method declaration options (the paper's `ro` modifier plus the statically
// checked access annotations).
var (
	// RO marks a method readonly; readonly events activate contexts in
	// share mode and run concurrently.
	RO = schema.RO
	// MayAccess declares the contextclasses a method may reach.
	MayAccess = schema.MayAccess
	// MayCall declares a specific child method a method may invoke.
	MayCall = schema.MayCall
	// Cost declares simulated CPU consumed per invocation.
	Cost = schema.Cost
)

// Runtime errors callers are expected to branch on.
var (
	// ErrBackpressure completes a SubmitAsync Future when the target
	// server's executor queue is full; retry later or shed load.
	ErrBackpressure = core.ErrBackpressure
	// ErrClosed is returned when submitting to a closed runtime.
	ErrClosed = core.ErrClosed
)

// Server instance profiles (calibrated against the paper's EC2 types).
var (
	M3Large  = cluster.M3Large
	M1Large  = cluster.M1Large
	M1Medium = cluster.M1Medium
	M1Small  = cluster.M1Small
)

// MaxServers returns a constraint capping cluster growth.
func MaxServers(n int) Constraint { return emanager.MaxServers(n) }

// CompilePolicy compiles an elasticity policy program, e.g.:
//
//	when latency > 10ms add server m1.small
//	when util > 0.85 rebalance 0.5
//	max servers 32
//	cooldown 2s
func CompilePolicy(src string) (*DSLPolicy, error) { return emanager.CompilePolicy(src) }

// PinContexts returns a constraint forbidding migration of the given
// contexts.
func PinContexts(ids ...ContextID) Constraint { return emanager.PinContexts(ids...) }

// NewSchema returns an empty contextclass schema.
func NewSchema() *Schema { return schema.New() }

// NewGraph returns an empty ownership network.
func NewGraph() *Graph { return ownership.NewGraph() }

// System bundles a deployed AEON stack: the runtime, its cluster, the
// elasticity manager, and the cloud store the manager journals into.
type System struct {
	Runtime *Runtime
	Cluster *Cluster
	Manager *Manager
	Store   *CloudStore
}

// options collects System construction settings.
type options struct {
	schema     *Schema
	servers    int
	profile    Profile
	netCfg     SimNetworkConfig
	rtCfg      RuntimeConfig
	mgrCfg     ManagerConfig
	storeOpts  []cloudstore.Option
	haveRtCfg  bool
	haveMgrCfg bool
}

// Option configures New.
type Option func(*options)

// WithSchema sets the application schema (required). The schema is frozen
// by New if it is not already.
func WithSchema(s *Schema) Option {
	return func(o *options) { o.schema = s }
}

// WithServers provisions n servers of the given profile (default: 2 ×
// m3.large).
func WithServers(n int, p Profile) Option {
	return func(o *options) { o.servers, o.profile = n, p }
}

// WithNetwork sets the simulated network parameters (default: the
// intra-datacenter model used by the benchmarks).
func WithNetwork(cfg SimNetworkConfig) Option {
	return func(o *options) { o.netCfg = cfg }
}

// WithRuntimeConfig overrides the runtime configuration.
func WithRuntimeConfig(cfg RuntimeConfig) Option {
	return func(o *options) { o.rtCfg, o.haveRtCfg = cfg, true }
}

// WithManagerConfig overrides the elasticity manager configuration.
func WithManagerConfig(cfg ManagerConfig) Option {
	return func(o *options) { o.mgrCfg, o.haveMgrCfg = cfg, true }
}

// New deploys an AEON system: a simulated cluster, a runtime over a fresh
// ownership network, and an elasticity manager journaling into an in-memory
// cloud store. Close the system with System.Close.
func New(opts ...Option) (*System, error) {
	o := options{
		servers: 2,
		profile: cluster.M3Large,
		netCfg:  transport.DefaultSimConfig(),
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.schema == nil {
		o.schema = schema.New()
	}
	if err := o.schema.Freeze(); err != nil {
		return nil, err
	}
	cl := cluster.New(transport.NewSim(o.netCfg))
	for i := 0; i < o.servers; i++ {
		cl.AddServer(o.profile)
	}
	rtCfg := core.DefaultConfig()
	if o.haveRtCfg {
		rtCfg = o.rtCfg
	}
	rt, err := core.New(o.schema, ownership.NewGraph(), cl, rtCfg)
	if err != nil {
		return nil, err
	}
	mgrCfg := emanager.DefaultConfig()
	if o.haveMgrCfg {
		mgrCfg = o.mgrCfg
	}
	store := cloudstore.New(o.storeOpts...)
	mgr := emanager.New(rt, store, mgrCfg)
	return &System{Runtime: rt, Cluster: cl, Manager: mgr, Store: store}, nil
}

// Close stops the elasticity manager and drains the runtime.
func (s *System) Close() {
	if s.Manager != nil {
		s.Manager.Stop()
	}
	if s.Runtime != nil {
		s.Runtime.Close()
	}
}
