module aeon

go 1.22
