package aeon_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"aeon"
	"aeon/internal/emanager"
)

// TestIntegrationFullLifecycle exercises the whole stack through the public
// API: deploy, load, policy-driven scale-out, migration under load,
// consistent snapshot, simulated eManager hand-over, server failure
// recovery, and scale-in — with an application invariant (conserved total)
// checked throughout.
func TestIntegrationFullLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	emanager.RegisterSnapshotType(&accountState{})

	sys, err := aeon.New(
		aeon.WithSchema(bankSchema(t)),
		aeon.WithServers(2, aeon.M3Large),
		aeon.WithNetwork(aeon.SimNetworkConfig{BaseLatency: 50 * time.Microsecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rt := sys.Runtime

	// Deploy: 4 banks, each owning 8 accounts, spread over the servers.
	const nBanks, nAccounts, seedMoney = 4, 8, 1000
	banks := make([]aeon.ContextID, nBanks)
	accounts := make(map[aeon.ContextID][]aeon.ContextID, nBanks)
	servers := sys.Cluster.Servers()
	for i := range banks {
		b, err := rt.CreateContextOn(servers[i%len(servers)].ID(), "Bank")
		if err != nil {
			t.Fatal(err)
		}
		banks[i] = b
		for j := 0; j < nAccounts; j++ {
			a, err := rt.CreateContext("Account", b)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Submit(a, "deposit", seedMoney); err != nil {
				t.Fatal(err)
			}
			accounts[b] = append(accounts[b], a)
		}
	}
	auditAll := func() int {
		total := 0
		for _, b := range banks {
			res, err := rt.Submit(b, "audit")
			if err != nil {
				t.Fatalf("audit: %v", err)
			}
			total += res.(int)
		}
		return total
	}
	want := nBanks * nAccounts * seedMoney
	if got := auditAll(); got != want {
		t.Fatalf("seed audit = %d; want %d", got, want)
	}

	// Background load across all banks.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := banks[rng.Intn(nBanks)]
				accs := accounts[b]
				from := accs[rng.Intn(len(accs))]
				to := accs[rng.Intn(len(accs))]
				if from == to {
					continue
				}
				if _, err := rt.Submit(b, "transfer", from, to, rng.Intn(20)); err != nil &&
					err.Error() != "insufficient funds" {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(int64(c + 1))
	}

	// Policy-driven scale-out via the DSL.
	policy, err := aeon.CompilePolicy(fmt.Sprintf(`
when latency > %v add server m3.large
max servers 4
cooldown 1ns
`, time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	sys.Manager.AddPolicy(policy)
	sys.Manager.Evaluate()
	sys.Manager.Evaluate()
	if n := sys.Cluster.Size(); n < 3 {
		t.Fatalf("cluster size = %d; want scale-out", n)
	}

	// Migrate a bank (and its accounts) under load.
	from, _ := rt.Directory().Locate(banks[0])
	var to aeon.ServerID
	for _, s := range sys.Cluster.Servers() {
		if s.ID() != from {
			to = s.ID()
			break
		}
	}
	if err := sys.Manager.MigrateGroup(banks[0], to); err != nil {
		t.Fatalf("migrate group: %v", err)
	}
	for _, a := range accounts[banks[0]] {
		if srv, _ := rt.Directory().Locate(a); srv != to {
			t.Fatalf("account %v not co-migrated (on %v; want %v)", a, srv, to)
		}
	}

	// Consistent snapshot of a live bank.
	key, n, err := sys.Manager.Snapshot(banks[1])
	if err != nil {
		t.Fatal(err)
	}
	if n != nAccounts {
		t.Fatalf("snapshot captured %d contexts; want %d", n, nAccounts)
	}
	states, err := sys.Manager.LoadSnapshot(key)
	if err != nil {
		t.Fatal(err)
	}
	snapTotal := 0
	for id, st := range states {
		if id == banks[1] {
			continue
		}
		snapTotal += st.(*accountState).Balance
	}
	if snapTotal != nAccounts*seedMoney {
		t.Fatalf("snapshot total = %d; want %d (consistent cut)", snapTotal, nAccounts*seedMoney)
	}

	// eManager hand-over: a second manager over the same store can operate.
	mgr2 := emanager.New(rt, sys.Store, emanager.DefaultConfig())
	if err := mgr2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}

	close(stop)
	wg.Wait()

	if got := auditAll(); got != want {
		t.Fatalf("final audit = %d; want %d (conservation through scale-out, migration, snapshot)", got, want)
	}

	// Server failure: checkpoint then lose a server; invariant restored
	// from the checkpoints.
	victimSrv := sys.Cluster.Servers()[0].ID()
	if _, err := sys.Manager.CheckpointServer(victimSrv); err != nil {
		t.Fatal(err)
	}
	report, err := sys.Manager.RecoverServerFailure(victimSrv)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Lost) == 0 {
		t.Fatal("victim hosted nothing; test setup broken")
	}
	if got := auditAll(); got != want {
		t.Fatalf("post-failure audit = %d; want %d", got, want)
	}
}
