package aeon_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"aeon"
)

// bankState and accountState exercise the public API end to end.
type accountState struct {
	Balance int
}

func bankSchema(t *testing.T) *aeon.Schema {
	t.Helper()
	s := aeon.NewSchema()
	account := s.MustDeclareClass("Account", func() any { return &accountState{} })
	account.MustDeclareMethod("deposit", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*accountState)
		st.Balance += args[0].(int)
		return st.Balance, nil
	})
	account.MustDeclareMethod("withdraw", func(call aeon.Call, args []any) (any, error) {
		st := call.State().(*accountState)
		amt := args[0].(int)
		if amt > st.Balance {
			return nil, errors.New("insufficient funds")
		}
		st.Balance -= amt
		return st.Balance, nil
	})
	account.MustDeclareMethod("balance", func(call aeon.Call, args []any) (any, error) {
		return call.State().(*accountState).Balance, nil
	}, aeon.RO())

	bank := s.MustDeclareClass("Bank", nil)
	bank.MustDeclareMethod("transfer", func(call aeon.Call, args []any) (any, error) {
		from := args[0].(aeon.ContextID)
		to := args[1].(aeon.ContextID)
		amt := args[2].(int)
		if _, err := call.Sync(from, "withdraw", amt); err != nil {
			return nil, err
		}
		return call.Sync(to, "deposit", amt)
	}, aeon.MayCall("Account", "withdraw"), aeon.MayCall("Account", "deposit"))
	bank.MustDeclareMethod("audit", func(call aeon.Call, args []any) (any, error) {
		accounts, err := call.Children("Account")
		if err != nil {
			return nil, err
		}
		total := 0
		for _, a := range accounts {
			b, err := call.Sync(a, "balance")
			if err != nil {
				return nil, err
			}
			total += b.(int)
		}
		return total, nil
	}, aeon.RO(), aeon.MayCall("Account", "balance"))
	return s
}

func newBank(t *testing.T) (*aeon.System, aeon.ContextID, []aeon.ContextID) {
	t.Helper()
	sys, err := aeon.New(
		aeon.WithSchema(bankSchema(t)),
		aeon.WithServers(2, aeon.M3Large),
		aeon.WithNetwork(aeon.SimNetworkConfig{}), // zero-latency for tests
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	bank, err := sys.Runtime.CreateContext("Bank")
	if err != nil {
		t.Fatal(err)
	}
	var accounts []aeon.ContextID
	for i := 0; i < 4; i++ {
		a, err := sys.Runtime.CreateContext("Account", bank)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Runtime.Submit(a, "deposit", 1000); err != nil {
			t.Fatal(err)
		}
		accounts = append(accounts, a)
	}
	return sys, bank, accounts
}

func TestPublicAPIQuickstart(t *testing.T) {
	sys, bank, accounts := newBank(t)
	if _, err := sys.Runtime.Submit(bank, "transfer", accounts[0], accounts[1], 250); err != nil {
		t.Fatal(err)
	}
	b0, _ := sys.Runtime.Submit(accounts[0], "balance")
	b1, _ := sys.Runtime.Submit(accounts[1], "balance")
	if b0.(int) != 750 || b1.(int) != 1250 {
		t.Fatalf("balances = %v, %v; want 750, 1250", b0, b1)
	}
}

func TestPublicAPIConservationUnderConcurrency(t *testing.T) {
	sys, bank, accounts := newBank(t)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				from := accounts[(c+i)%len(accounts)]
				to := accounts[(c+i+1)%len(accounts)]
				_, err := sys.Runtime.Submit(bank, "transfer", from, to, 1)
				if err != nil && err.Error() != "insufficient funds" {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	total, err := sys.Runtime.Submit(bank, "audit")
	if err != nil {
		t.Fatal(err)
	}
	if total.(int) != 4000 {
		t.Fatalf("audit total = %v; want 4000", total)
	}
}

func TestPublicAPIMigration(t *testing.T) {
	sys, _, accounts := newBank(t)
	from, _ := sys.Runtime.Directory().Locate(accounts[0])
	var to aeon.ServerID
	for _, s := range sys.Cluster.Servers() {
		if s.ID() != from {
			to = s.ID()
		}
	}
	if err := sys.Manager.Migrate(accounts[0], to); err != nil {
		t.Fatal(err)
	}
	b, err := sys.Runtime.Submit(accounts[0], "balance")
	if err != nil {
		t.Fatal(err)
	}
	if b.(int) != 1000 {
		t.Fatalf("balance after migration = %v", b)
	}
}

func TestPublicAPIElasticity(t *testing.T) {
	sys, _, _ := newBank(t)
	sys.Manager.AddConstraint(aeon.MaxServers(3))
	sys.Manager.AddPolicy(&aeon.SLAPolicy{
		Target:   time.Nanosecond, // always in breach: forces a scale-out
		Profile:  aeon.M1Small,
		Cooldown: time.Nanosecond,
	})
	// One breach observation is needed before the policy fires.
	sys.Manager.Evaluate()
	if n := sys.Cluster.Size(); n != 3 {
		t.Fatalf("cluster size = %d; want 3 after scale-out", n)
	}
	// Constraint holds the line.
	sys.Manager.Evaluate()
	if n := sys.Cluster.Size(); n != 3 {
		t.Fatalf("cluster size = %d; want 3 (MaxServers)", n)
	}
}

func TestSchemaValidationThroughPublicAPI(t *testing.T) {
	s := aeon.NewSchema()
	a := s.MustDeclareClass("A", nil)
	b := s.MustDeclareClass("B", nil)
	a.MustDeclareMethod("m", nil, aeon.MayAccess("B"))
	b.MustDeclareMethod("m", nil, aeon.MayAccess("A"))
	if _, err := aeon.New(aeon.WithSchema(s)); err == nil {
		t.Fatal("cyclic contextclass constraints must be rejected")
	}
}
